// Package service is the assertd serving layer: a long-lived HTTP/JSON
// front end over the core batch API — the first serving surface toward
// the production-scale checker the ROADMAP aims at. A request carries a
// design (Verilog source + top module) and a property list (named
// one-bit signals); the response is the exact input-ordered record
// array `assertcheck -json` prints, byte-for-byte, so CLI consumers
// and service consumers share one schema.
//
// Designs are compiled once and cached by content hash across
// requests: the first request for a design pays parse → elaborate →
// design compilation, every later request (any property set, any
// engine) goes straight to session setup, and the Design's per-engine
// caches (BMC frame template, BDD model snapshot, ATPG prep) are
// likewise shared across all concurrent requests. Compilation is
// singleflighted per hash — concurrent first requests block on one
// build rather than duplicating it. The cache is LRU-bounded
// (Options.DesignCacheEntries) so a server fed unbounded distinct
// designs stays flat; evicted designs recompile on re-request.
//
// The serving path degrades instead of falling over: admission control
// bounds concurrent checks and the waiting room in front of them
// (excess load is shed with 429 + Retry-After), every request runs
// under a deadline (server default + per-request override) whose
// expiry surfaces as unknown-verdict records rather than a dropped
// connection, engine panics degrade to attributed error records
// (core's batch isolation), and a draining server answers 503 while
// in-flight work completes. The internal/faultinject points (compile,
// session, each engine, encode) let the degradation suite and the CI
// degrade-smoke job prove all of this end to end.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bmc"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/lru"
	"repro/internal/mc"
	"repro/internal/persist"
	"repro/internal/property"
)

// Options tunes the server.
type Options struct {
	// MaxJobs caps the per-request worker-pool size (0 = 8). A request
	// asking for more jobs is clamped, not rejected.
	MaxJobs int
	// MaxBodyBytes caps the request body (0 = 4 MiB).
	MaxBodyBytes int64
	// MaxConcurrent caps how many check requests run at once
	// (0 = GOMAXPROCS). Requests beyond it wait in the admission queue.
	MaxConcurrent int
	// MaxQueue bounds the admission waiting room (0 = 4×MaxConcurrent).
	// A request arriving to a full queue is shed with 429 + Retry-After.
	MaxQueue int
	// MaxDepth caps the per-request frame bound (0 = 128). Absurd
	// depths are rejected with a 400 — depth drives memory and time
	// superlinearly, so it is the easiest way to poison a worker.
	MaxDepth int
	// DefaultTimeout bounds each request's whole check when the request
	// does not override it (0 = no default). Expiry surfaces as the
	// engines' unknown-verdict records, not a dropped connection.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request timeout overrides — and, when set,
	// also bounds requests that asked for no timeout at all (0 = no
	// clamp).
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// DesignCacheEntries bounds the compiled-design cache (0 = 64,
	// < 0 = unbounded).
	DesignCacheEntries int
	// VerdictCacheEntries bounds the cone-keyed verdict cache (0 = the
	// core default 4096, < 0 = disabled). Cached records replay
	// byte-identically (the cache is transparent to every response
	// contract), so it is on by default; it is forced off under
	// StateESTG, whose shared learned stores make fresh metrics drift
	// from cached ones.
	VerdictCacheEntries int
	// EnableFaults turns on the X-Fault-Inject request header (parsed
	// into request-scoped internal/faultinject rules). For degradation
	// testing only — never enable it on a production server.
	EnableFaults bool
	// StateDir, when non-empty, roots the crash-safe durable-state store
	// (design-cache manifest; plus learned ESTG snapshots with
	// StateESTG). An unopenable dir is reported by StateError, not New.
	StateDir string
	// StateInterval is the periodic flush cadence (0 = 30s).
	StateInterval time.Duration
	// StateMaxBytes caps the on-disk snapshot bytes, LRU-evicting old
	// snapshots (0 = 64 MiB, < 0 = unbounded).
	StateMaxBytes int64
	// StateRewarm bounds how many MRU designs the manifest records and
	// Rewarm recompiles at startup (0 = 16).
	StateRewarm int
	// StateESTG opts into the per-design-hash persistent ESTG registry:
	// learned guidance is shared across requests and restarts. Verdicts
	// are unaffected by construction, but search metrics (implications,
	// decisions) come to depend on accumulated state — which breaks the
	// byte-identity serving contracts — so it is off by default and
	// requires StateDir.
	StateESTG bool
	// Version is the build identifier /healthz reports (optional).
	Version string
	// Logf receives serving-layer log lines (state recovery, flush
	// failures); nil discards.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxJobs == 0 {
		o.MaxJobs = 8
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 4 << 20
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 4 * o.MaxConcurrent
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 128
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	if o.DesignCacheEntries == 0 {
		o.DesignCacheEntries = 64
	}
	if o.StateInterval == 0 {
		o.StateInterval = 30 * time.Second
	}
	if o.StateMaxBytes == 0 {
		o.StateMaxBytes = 64 << 20
	}
	if o.StateRewarm == 0 {
		o.StateRewarm = 16
	}
	return o
}

// CheckRequest is the POST /v1/check body.
type CheckRequest struct {
	// Design is the Verilog source text; Top names the top module.
	Design string `json:"design"`
	Top    string `json:"top"`
	// Invariants and Witnesses name one-bit signals: invariants must
	// always be 1, witnesses ask for a trace driving the signal to 1.
	// Results come back in input order, invariants first.
	Invariants []string `json:"invariants,omitempty"`
	Witnesses  []string `json:"witnesses,omitempty"`
	// Depth bounds the time frames (0 = 16; capped by the server's
	// MaxDepth, negative or over-cap values are rejected).
	Depth int `json:"depth,omitempty"`
	// Engine selects atpg (default), bmc, bdd or portfolio.
	Engine string `json:"engine,omitempty"`
	// Jobs is the worker-pool size for the batch (0 = 1; clamped to
	// the server's MaxJobs; negative values are rejected).
	Jobs int `json:"jobs,omitempty"`
	// NoInduction disables the k-induction upgrade (on by default, as
	// in the CLI).
	NoInduction bool `json:"no_induction,omitempty"`
	// TimeoutMs overrides the server's default request timeout in
	// milliseconds (0 = server default; clamped to the server's
	// MaxTimeout; negative values are rejected). Expired checks report
	// verdict "unknown" in their records, exactly like `assertcheck
	// -timeout`.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Server serves check requests over cached compiled designs. Safe for
// concurrent use; construct with New.
type Server struct {
	opts     Options
	designs  *lru.Cache[string, *designEntry]
	adm      *limiter
	draining atomic.Bool
	// served counts completed (200) check responses; drainShed counts
	// requests refused because the server was draining. Together with
	// the limiter's rejection counter they give operators — and the
	// cluster router's health checker — the cumulative request ledger,
	// not just the instantaneous gauges.
	served    atomic.Int64
	drainShed atomic.Int64
	started   time.Time
	logf      func(string, ...any)

	// Durable state (state.go): nil state = disabled. stateErr records
	// why a requested StateDir could not open.
	state    *persist.Store
	stateErr error
	learned  *core.LearnedRegistry

	// verdicts is the cone-keyed verdict cache (nil = disabled:
	// VerdictCacheEntries < 0, or gated off under StateESTG). The
	// implication counters feed /healthz: spent sums freshly computed
	// records, saved sums replayed ones — the incremental-serving win,
	// measurable because cached records carry their original counts.
	verdicts        *core.VerdictCache
	vImplSpent      atomic.Int64
	vImplSaved      atomic.Int64
	lastVerdictMuts atomic.Int64

	// Manifest change tracking (in-process only, so a restarted
	// server's first flush always writes) and the last-flush telemetry
	// /healthz reports.
	manifestMu    sync.Mutex
	lastManifest  string
	lastFlushNano atomic.Int64
	lastFlushErr  atomic.Pointer[string]
}

// designEntry singleflights one design compilation and caches the
// result while resident (the cache key is a content hash, so entries
// never go stale — only LRU eviction drops them). done flips only
// after the build finishes, so concurrent first requests that block on
// the singleflight are reported as misses, not hits.
type designEntry struct {
	once sync.Once
	done atomic.Bool
	d    *core.Design
	err  error
	// src/top are kept for the warm-restart manifest: an entry's source
	// must be re-compilable after a restart, so the manifest stores it.
	src, top string
}

// New returns a server with an empty design cache. With StateDir set
// it also opens the durable-state store; an open failure is latched in
// StateError rather than returned, so callers decide whether a server
// without its state dir may run (assertd refuses).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	if opts.EnableFaults {
		faultinject.Activate()
	}
	cap := opts.DesignCacheEntries
	if cap < 0 {
		cap = 0 // lru: <=0 means unbounded
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		opts:    opts,
		designs: lru.New[string, *designEntry](cap),
		adm:     newLimiter(opts.MaxConcurrent, opts.MaxQueue),
		started: time.Now(),
		logf:    logf,
	}
	switch {
	case opts.VerdictCacheEntries < 0:
		// Disabled by the operator.
	case opts.StateESTG:
		logf("verdict cache disabled: -state-estg shared learned stores drift search metrics")
	default:
		s.verdicts = core.NewVerdictCache(opts.VerdictCacheEntries)
	}
	if opts.StateDir != "" {
		maxBytes := opts.StateMaxBytes
		if maxBytes < 0 {
			maxBytes = 0 // persist: <=0 means unbounded
		}
		st, err := persist.Open(opts.StateDir, persist.Options{MaxBytes: maxBytes, Logf: logf})
		if err != nil {
			s.stateErr = err
			return s
		}
		s.state = st
		if opts.StateESTG {
			s.learned = core.NewLearnedRegistry(core.LearnedOptions{Persist: st, Logf: logf})
		}
	}
	return s
}

// design returns the compiled design for a source, compiling it at
// most once per resident content-hash entry; hit reports whether a
// *finished* compile was already cached when the request arrived (for
// the X-Design-Cache response header and the serve-smoke CI check) — a
// request that blocks on another request's in-flight build is a miss.
func (s *Server) design(src, top string) (d *core.Design, hit bool, err error) {
	key := core.Fingerprint(src, top)
	e, loaded := s.designs.GetOrAdd(key, func() *designEntry { return &designEntry{src: src, top: top} })
	hit = loaded && e.done.Load()
	e.once.Do(func() {
		e.d, e.err = core.CompileVerilog(src, top)
		e.done.Store(true)
	})
	return e.d, hit, e.err
}

// CachedDesigns returns the number of resident compiled designs.
func (s *Server) CachedDesigns() int { return s.designs.Len() }

// DesignCacheStats snapshots the design cache counters.
func (s *Server) DesignCacheStats() lru.Stats { return s.designs.Stats() }

// VerdictCacheStats snapshots the verdict cache counters (all zero
// when the cache is disabled).
func (s *Server) VerdictCacheStats() core.VerdictCacheStats {
	if s.verdicts == nil {
		return core.VerdictCacheStats{}
	}
	return s.verdicts.Stats()
}

// InFlight returns how many check requests currently hold a slot.
func (s *Server) InFlight() int { return s.adm.InFlight() }

// Queued returns how many check requests are waiting for a slot.
func (s *Server) Queued() int { return s.adm.Queued() }

// Rejected returns how many check requests were shed by admission.
func (s *Server) Rejected() int64 { return s.adm.Rejected() }

// Served returns how many check requests completed with a 200.
func (s *Server) Served() int64 { return s.served.Load() }

// Shed returns how many check requests were refused with 429 or 503:
// admission rejections (queue full, expired while queued) plus
// drain-time refusals.
func (s *Server) Shed() int64 { return s.adm.Rejected() + s.drainShed.Load() }

// BeginDrain flips the server into draining: new check requests are
// refused with 503 (queued and in-flight ones complete) and /healthz
// reports "draining". It is one-way; callers follow it with
// http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP handler: POST /v1/check, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.recovering(s.handleCheck))
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// health is the /healthz body. The status and designs fields predate
// the robustness layer; the admission gauges and cache counters came
// with it; limits and the cumulative served/shed ledger exist so a
// router (or an operator) can see a replica's capacity envelope and
// traffic history, not just its instantaneous state.
type health struct {
	Status          string         `json:"status"`
	Version         string         `json:"version,omitempty"`
	UptimeS         float64        `json:"uptime_s"`
	Designs         int            `json:"designs"`
	DesignHits      int64          `json:"design_hits"`
	DesignMisses    int64          `json:"design_misses"`
	DesignEvictions int64          `json:"design_evictions"`
	InFlight        int            `json:"in_flight"`
	Queued          int            `json:"queued"`
	Rejected        int64          `json:"rejected"`
	Served          int64          `json:"served"`
	Shed            int64          `json:"shed"`
	Limits          healthLimits   `json:"limits"`
	State           healthState    `json:"state"`
	VerdictCache    healthVerdicts `json:"verdict_cache"`
}

// healthVerdicts is the /healthz verdict-cache block: residency, the
// hit/miss/store/eviction counters, and the implication ledger (spent
// = freshly computed across all requests, saved = replayed from cache)
// that quantifies the incremental-serving win.
type healthVerdicts struct {
	Enabled           bool  `json:"enabled"`
	Entries           int   `json:"entries"`
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Stores            int64 `json:"stores"`
	Evictions         int64 `json:"evictions"`
	ImplicationsSpent int64 `json:"implications_spent"`
	ImplicationsSaved int64 `json:"implications_saved"`
}

// verdictHealth snapshots the verdict-cache block for /healthz.
func (s *Server) verdictHealth() healthVerdicts {
	hv := healthVerdicts{
		ImplicationsSpent: s.vImplSpent.Load(),
		ImplicationsSaved: s.vImplSaved.Load(),
	}
	if s.verdicts == nil {
		return hv
	}
	st := s.verdicts.Stats()
	hv.Enabled = true
	hv.Entries = st.Entries
	hv.Hits = st.Hits
	hv.Misses = st.Misses
	hv.Stores = st.Stores
	hv.Evictions = st.Evictions
	return hv
}

// healthLimits is the replica's static capacity envelope: concurrency
// slots, waiting-room depth, the per-request caps.
type healthLimits struct {
	MaxConcurrent    int   `json:"max_concurrent"`
	MaxQueue         int   `json:"max_queue"`
	MaxJobs          int   `json:"max_jobs"`
	MaxDepth         int   `json:"max_depth"`
	DefaultTimeoutMs int64 `json:"default_timeout_ms"`
	MaxTimeoutMs     int64 `json:"max_timeout_ms"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.designs.Stats()
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(health{
		Status:          status,
		Version:         s.opts.Version,
		UptimeS:         time.Since(s.started).Seconds(),
		Designs:         st.Len,
		DesignHits:      st.Hits,
		DesignMisses:    st.Misses,
		DesignEvictions: st.Evictions,
		InFlight:        s.InFlight(),
		Queued:          s.Queued(),
		Rejected:        s.Rejected(),
		Served:          s.Served(),
		Shed:            s.Shed(),
		Limits: healthLimits{
			MaxConcurrent:    s.opts.MaxConcurrent,
			MaxQueue:         s.opts.MaxQueue,
			MaxJobs:          s.opts.MaxJobs,
			MaxDepth:         s.opts.MaxDepth,
			DefaultTimeoutMs: s.opts.DefaultTimeout.Milliseconds(),
			MaxTimeoutMs:     s.opts.MaxTimeout.Milliseconds(),
		},
		State:        s.stateHealth(),
		VerdictCache: s.verdictHealth(),
	})
}

// recovering isolates handler panics (including injected ones at the
// compile/session points in panic mode): the connection gets a 500
// JSON error and the server keeps serving, instead of net/http killing
// the connection with an empty reply.
func (s *Server) recovering(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				httpError(w, http.StatusInternalServerError, "internal panic: %v", rec)
			}
		}()
		h(w, r)
	}
}

// httpError sends a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// overloaded sends a structured overload response (429 while shedding,
// 503 while draining) with the Retry-After hint.
func (s *Server) overloaded(w http.ResponseWriter, status int, format string, args ...any) {
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, status, format, args...)
}

// validate bounds the request's numeric fields; it returns a non-empty
// message on rejection.
func (s *Server) validate(req *CheckRequest) string {
	if req.Design == "" || req.Top == "" {
		return "design and top are required"
	}
	if len(req.Invariants)+len(req.Witnesses) == 0 {
		return "need at least one invariant or witness"
	}
	if req.Depth < 0 {
		return fmt.Sprintf("depth %d is negative", req.Depth)
	}
	if req.Depth > s.opts.MaxDepth {
		return fmt.Sprintf("depth %d exceeds the server cap %d", req.Depth, s.opts.MaxDepth)
	}
	if req.Jobs < 0 {
		return fmt.Sprintf("jobs %d is negative", req.Jobs)
	}
	if req.TimeoutMs < 0 {
		return fmt.Sprintf("timeout_ms %d is negative", req.TimeoutMs)
	}
	return ""
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CheckRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if msg := s.validate(&req); msg != "" {
		httpError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	if s.Draining() {
		s.drainShed.Add(1)
		s.overloaded(w, http.StatusServiceUnavailable, "draining: not accepting new work")
		return
	}

	ctx := r.Context()
	// Fault-drilled requests bypass the verdict cache: injection points
	// live inside the engines, and a cache hit would skip them (the
	// degrade suite wants the failure, not last week's verdict).
	verdicts := s.verdicts
	if s.opts.EnableFaults {
		if spec := r.Header.Get("X-Fault-Inject"); spec != "" {
			set, err := faultinject.Parse(spec)
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			ctx = faultinject.WithSet(ctx, set)
			verdicts = nil
		}
	}

	// Per-request deadline: the request override wins over the server
	// default, and MaxTimeout clamps both (including "no timeout
	// requested" — a stuck client must not pin a worker forever when
	// the operator set a ceiling).
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Admission: take a slot or wait in the bounded queue. The wait is
	// bounded by the request deadline, so a queued request cannot
	// outlive its budget.
	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			s.overloaded(w, http.StatusTooManyRequests, "overloaded: admission queue full")
		} else {
			s.overloaded(w, http.StatusTooManyRequests, "deadline expired while queued")
		}
		return
	}
	defer s.adm.release()

	if err := faultinject.Fire(ctx, faultinject.PointCompile); err != nil {
		httpError(w, http.StatusInternalServerError, "compile: %v", err)
		return
	}
	d, hit, err := s.design(req.Design, req.Top)
	if err != nil {
		httpError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}
	props, err := property.FromNames(d.Netlist(), req.Invariants, req.Witnesses)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := core.Options{MaxDepth: req.Depth, UseInduction: !req.NoInduction}
	engineName := req.Engine
	if engineName == "" {
		engineName = core.EngineATPG
	}
	if engineName == core.EngineBMC || engineName == core.EngineBDD {
		// Baseline engines never read the ATPG-side session state.
		opts.DisableLocalFSM = true
		opts.DisableLearnedStore = true
	} else if s.learned != nil {
		// Opt-in persistent learned store: every ATPG-path request for
		// this design shares (and durably accumulates) one ESTG store.
		// Guidance only — the gate exists because shared state makes the
		// search metrics depend on traffic history, which the ungated
		// byte-identity contracts forbid.
		opts.Store = s.learned.StoreFor(ctx, core.Fingerprint(req.Design, req.Top))
	}
	if err := faultinject.Fire(ctx, faultinject.PointSession); err != nil {
		httpError(w, http.StatusInternalServerError, "session: %v", err)
		return
	}
	sess, err := d.NewSession(opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "session: %v", err)
		return
	}
	var eng core.Engine
	switch engineName {
	case core.EngineATPG:
		eng = nil // CheckAll's default: the session's ATPG path
	case core.EngineBMC:
		eng = sess.BMCEngine(bmc.Options{})
	case core.EngineBDD:
		eng = sess.BDDEngine(mc.Options{})
	case core.EnginePortfolio:
		eng = sess.Portfolio()
	default:
		httpError(w, http.StatusBadRequest, "unknown engine %q", req.Engine)
		return
	}
	jobs := req.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	if jobs > s.opts.MaxJobs {
		jobs = s.opts.MaxJobs
	}
	// The request context cancels the whole batch when the client goes
	// away or the deadline expires — in-flight engines observe it
	// through their ctx plumbing and report unknown verdicts.
	results := sess.CheckAll(ctx, props, core.BatchOptions{Jobs: jobs, Engine: eng, Cache: verdicts})

	// The per-request verdict-cache ledger: hits replayed vs cones
	// re-checked, and the implication work each side represents.
	var vHits, vMisses, implSpent, implSaved int64
	for i := range results {
		if results[i].FromCache {
			vHits++
			implSaved += results[i].Metrics.Implications
		} else {
			vMisses++
			implSpent += results[i].Metrics.Implications
		}
	}
	s.vImplSpent.Add(implSpent)
	s.vImplSaved.Add(implSaved)

	// Encode to a buffer before touching headers: a mid-stream encode
	// failure after WriteHeader(200) would silently truncate the body,
	// which a consumer cannot tell apart from a complete response.
	var buf bytes.Buffer
	encErr := faultinject.Fire(ctx, faultinject.PointEncode)
	if encErr == nil {
		encErr = core.EncodeRecords(&buf, results)
	}
	if encErr != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", encErr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Design-Cache", "hit")
	} else {
		w.Header().Set("X-Design-Cache", "miss")
	}
	if verdicts != nil {
		w.Header().Set("X-Verdict-Cache", fmt.Sprintf("hits=%d misses=%d", vHits, vMisses))
	}
	s.served.Add(1)
	_, _ = w.Write(buf.Bytes())
}
