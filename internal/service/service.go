// Package service is the assertd serving layer: a long-lived HTTP/JSON
// front end over the core batch API — the first serving surface toward
// the production-scale checker the ROADMAP aims at. A request carries a
// design (Verilog source + top module) and a property list (named
// one-bit signals); the response is the exact input-ordered record
// array `assertcheck -json` prints, byte-for-byte, so CLI consumers
// and service consumers share one schema.
//
// Designs are compiled once and cached by content hash across
// requests: the first request for a design pays parse → elaborate →
// design compilation, every later request (any property set, any
// engine) goes straight to session setup, and the Design's per-engine
// caches (BMC frame template, BDD model snapshot, ATPG prep) are
// likewise shared across all concurrent requests. Compilation is
// singleflighted per hash — concurrent first requests block on one
// build rather than duplicating it.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/bmc"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/property"
)

// Options tunes the server.
type Options struct {
	// MaxJobs caps the per-request worker-pool size (0 = 8). A request
	// asking for more jobs is clamped, not rejected.
	MaxJobs int
	// MaxBodyBytes caps the request body (0 = 4 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxJobs == 0 {
		o.MaxJobs = 8
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 4 << 20
	}
	return o
}

// CheckRequest is the POST /v1/check body.
type CheckRequest struct {
	// Design is the Verilog source text; Top names the top module.
	Design string `json:"design"`
	Top    string `json:"top"`
	// Invariants and Witnesses name one-bit signals: invariants must
	// always be 1, witnesses ask for a trace driving the signal to 1.
	// Results come back in input order, invariants first.
	Invariants []string `json:"invariants,omitempty"`
	Witnesses  []string `json:"witnesses,omitempty"`
	// Depth bounds the time frames (0 = 16).
	Depth int `json:"depth,omitempty"`
	// Engine selects atpg (default), bmc, bdd or portfolio.
	Engine string `json:"engine,omitempty"`
	// Jobs is the worker-pool size for the batch (0 = 1; clamped to
	// the server's MaxJobs).
	Jobs int `json:"jobs,omitempty"`
	// NoInduction disables the k-induction upgrade (on by default, as
	// in the CLI).
	NoInduction bool `json:"no_induction,omitempty"`
}

// Server serves check requests over cached compiled designs. Safe for
// concurrent use; construct with New.
type Server struct {
	opts Options

	mu      sync.Mutex
	designs map[string]*designEntry
}

// designEntry singleflights one design compilation and caches the
// result forever (the cache key is a content hash, so entries never go
// stale). done flips only after the build finishes, so concurrent
// first requests that block on the singleflight are reported as
// misses, not hits.
type designEntry struct {
	once sync.Once
	done atomic.Bool
	d    *core.Design
	err  error
}

// New returns a server with an empty design cache.
func New(opts Options) *Server {
	return &Server{opts: opts.withDefaults(), designs: map[string]*designEntry{}}
}

// design returns the compiled design for a source, compiling it at
// most once per content hash; hit reports whether a *finished* compile
// was already cached when the request arrived (for the X-Design-Cache
// response header and the serve-smoke CI check) — a request that
// blocks on another request's in-flight build is a miss.
func (s *Server) design(src, top string) (d *core.Design, hit bool, err error) {
	key := core.Fingerprint(src, top)
	s.mu.Lock()
	e, ok := s.designs[key]
	if !ok {
		e = &designEntry{}
		s.designs[key] = e
	}
	s.mu.Unlock()
	hit = ok && e.done.Load()
	e.once.Do(func() {
		e.d, e.err = core.CompileVerilog(src, top)
		e.done.Store(true)
	})
	return e.d, hit, e.err
}

// CachedDesigns returns the number of cached compiled designs.
func (s *Server) CachedDesigns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.designs)
}

// Handler returns the HTTP handler: POST /v1/check, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.handleCheck)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"designs\":%d}\n", s.CachedDesigns())
	})
	return mux
}

// httpError sends a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CheckRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Design == "" || req.Top == "" {
		httpError(w, http.StatusBadRequest, "design and top are required")
		return
	}
	if len(req.Invariants)+len(req.Witnesses) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one invariant or witness")
		return
	}
	d, hit, err := s.design(req.Design, req.Top)
	if err != nil {
		httpError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}
	props, err := property.FromNames(d.Netlist(), req.Invariants, req.Witnesses)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := core.Options{MaxDepth: req.Depth, UseInduction: !req.NoInduction}
	engineName := req.Engine
	if engineName == "" {
		engineName = core.EngineATPG
	}
	if engineName == core.EngineBMC || engineName == core.EngineBDD {
		// Baseline engines never read the ATPG-side session state.
		opts.DisableLocalFSM = true
		opts.DisableLearnedStore = true
	}
	sess, err := d.NewSession(opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "session: %v", err)
		return
	}
	var eng core.Engine
	switch engineName {
	case core.EngineATPG:
		eng = nil // CheckAll's default: the session's ATPG path
	case core.EngineBMC:
		eng = sess.BMCEngine(bmc.Options{})
	case core.EngineBDD:
		eng = sess.BDDEngine(mc.Options{})
	case core.EnginePortfolio:
		eng = sess.Portfolio()
	default:
		httpError(w, http.StatusBadRequest, "unknown engine %q", req.Engine)
		return
	}
	jobs := req.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	if jobs > s.opts.MaxJobs {
		jobs = s.opts.MaxJobs
	}
	// The request context cancels the whole batch when the client goes
	// away — in-flight engines observe it through their ctx plumbing.
	results := sess.CheckAll(r.Context(), props, core.BatchOptions{Jobs: jobs, Engine: eng})

	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Design-Cache", "hit")
	} else {
		w.Header().Set("X-Design-Cache", "miss")
	}
	if err := core.EncodeRecords(w, results); err != nil {
		// Headers are gone; nothing more to do than note it.
		return
	}
}
