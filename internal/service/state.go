// Durable state for the serving layer: with Options.StateDir set, the
// server keeps two kinds of snapshots in an internal/persist store —
// a design-cache manifest (the most-recently-used designs' sources, so
// a restarted server recompiles them before taking traffic and the
// first post-restart request is a design-cache hit) and, behind the
// separate StateESTG opt-in, per-design-hash ESTG learned stores (so
// conflict knowledge accumulates across requests and restarts). The
// flush path runs periodically and at drain; the load path runs once
// at startup (Rewarm). Every disk failure mode degrades to a cold
// start by the persist layer's contract — this file never has to
// reason about torn or corrupt files.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"repro/internal/persist"
)

const (
	manifestKind = "manifest"
	manifestKey  = "designs"
	// manifestVersion guards the manifest JSON layout.
	manifestVersion = 1

	// The verdict-cache snapshot (core.VerdictCache.Snapshot bytes):
	// cone-keyed records survive restarts, so a rebooted server answers
	// repeat CI traffic from cache on its first request.
	verdictKind    = "verdicts"
	verdictSnapKey = "cache"
)

// manifest is the design-cache warm-restart record: the sources of the
// most-recently-used designs, MRU first. It is JSON (inside the
// persist store's validated envelope) — keys are hex and sources are
// Verilog text, all UTF-8-safe.
type manifest struct {
	Version int              `json:"version"`
	Designs []manifestDesign `json:"designs"`
}

type manifestDesign struct {
	Key string `json:"key"`
	Top string `json:"top"`
	Src string `json:"src"`
}

// StateEnabled reports whether the server opened a durable state dir.
func (s *Server) StateEnabled() bool { return s.state != nil }

// StateError returns the error that kept the state dir from opening
// (nil when state is disabled or healthy). assertd refuses to start on
// it — a server asked to persist state must not silently run without.
func (s *Server) StateError() error { return s.stateErr }

// FlushState writes the design-cache manifest (when its MRU content
// changed since the last write — except the first flush of a process,
// which always writes) and snapshots every mutated learned store. Safe
// for concurrent use; errors are also latched for /healthz.
func (s *Server) FlushState(ctx context.Context) error {
	if s.state == nil {
		return nil
	}
	err := s.flushManifest(ctx)
	if s.learned != nil {
		if _, lerr := s.learned.Flush(ctx); lerr != nil && err == nil {
			err = lerr
		}
	}
	if s.verdicts != nil {
		if verr := s.flushVerdicts(ctx); verr != nil && err == nil {
			err = verr
		}
	}
	now := time.Now().UnixNano()
	s.lastFlushNano.Store(now)
	if err != nil {
		msg := err.Error()
		s.lastFlushErr.Store(&msg)
	} else {
		s.lastFlushErr.Store(nil)
	}
	return err
}

// flushManifest snapshots the design cache's MRU ordering. The change
// hash is tracked in-process only, so a restarted server's first flush
// always rewrites the manifest even when its content matches the
// on-disk one.
func (s *Server) flushManifest(ctx context.Context) error {
	m := manifest{Version: manifestVersion}
	for _, key := range s.designs.Keys() {
		if len(m.Designs) >= s.opts.StateRewarm {
			break
		}
		e, ok := s.designs.Peek(key)
		if !ok || !e.done.Load() || e.err != nil {
			continue
		}
		m.Designs = append(m.Designs, manifestDesign{Key: key, Top: e.top, Src: e.src})
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])
	s.manifestMu.Lock()
	unchanged := s.lastManifest == hash
	s.manifestMu.Unlock()
	if unchanged {
		return nil
	}
	if err := s.state.Save(ctx, manifestKind, manifestKey, blob); err != nil {
		return err
	}
	s.manifestMu.Lock()
	s.lastManifest = hash
	s.manifestMu.Unlock()
	return nil
}

// flushVerdicts snapshots the verdict cache when it mutated since the
// last successful flush (the mutation counter is in-process only, so a
// restarted server's first mutated flush always writes).
func (s *Server) flushVerdicts(ctx context.Context) error {
	muts := s.verdicts.Mutations()
	if muts == s.lastVerdictMuts.Load() {
		return nil
	}
	blob, err := s.verdicts.Snapshot()
	if err != nil {
		return err
	}
	if err := s.state.Save(ctx, verdictKind, verdictSnapKey, blob); err != nil {
		return err
	}
	s.lastVerdictMuts.Store(muts)
	return nil
}

// Rewarm loads the design-cache manifest and recompiles its designs
// (MRU first, bounded by StateRewarm), so the cache is hot before the
// listener opens: the first post-restart request for a manifest design
// is an X-Design-Cache hit. A missing, corrupt or undecodable manifest
// — or any individual design that no longer compiles — degrades to a
// cold cache, never an error. Returns the number of designs warmed.
func (s *Server) Rewarm(ctx context.Context) int {
	if s.state == nil {
		return 0
	}
	s.rewarmVerdicts(ctx)
	blob, err := s.state.Load(ctx, manifestKind, manifestKey)
	if err != nil {
		if err != persist.ErrNotExist {
			s.logf("state: manifest unavailable (%v); starting cold", err)
		}
		return 0
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil || m.Version != manifestVersion {
		s.logf("state: manifest undecodable (version %d, %v); starting cold", m.Version, err)
		return 0
	}
	warmed := 0
	// Compile in reverse so the MRU design ends up most recent in the
	// rewarmed cache, matching the order it was saved with.
	for i := len(m.Designs) - 1; i >= 0; i-- {
		if ctx.Err() != nil {
			break
		}
		md := m.Designs[i]
		if i >= s.opts.StateRewarm {
			continue
		}
		if _, _, err := s.design(md.Src, md.Top); err != nil {
			s.logf("state: manifest design %.12s no longer compiles (%v); skipped", md.Key, err)
			continue
		}
		warmed++
	}
	s.logf("state: rewarmed %d designs from manifest", warmed)
	return warmed
}

// rewarmVerdicts restores the verdict-cache snapshot, so verdicts for
// repeat traffic survive restarts. A missing, corrupt or undecodable
// snapshot degrades to an empty cache, never an error.
func (s *Server) rewarmVerdicts(ctx context.Context) {
	if s.verdicts == nil {
		return
	}
	blob, err := s.state.Load(ctx, verdictKind, verdictSnapKey)
	if err != nil {
		if err != persist.ErrNotExist {
			s.logf("state: verdict snapshot unavailable (%v); starting cold", err)
		}
		return
	}
	n, err := s.verdicts.Restore(blob)
	if err != nil {
		s.logf("state: verdict snapshot undecodable (%v); starting cold", err)
		return
	}
	s.logf("state: restored %d cached verdicts", n)
}

// RunStateFlusher flushes on a StateInterval ticker until ctx is
// cancelled (the caller follows drain with one final FlushState so
// mutations from in-flight requests are captured). No-op without a
// state dir.
func (s *Server) RunStateFlusher(ctx context.Context) {
	if s.state == nil {
		return
	}
	t := time.NewTicker(s.opts.StateInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.FlushState(ctx); err != nil {
				s.logf("state: flush failed: %v", err)
			}
		}
	}
}

// healthState is the /healthz state block: snapshot inventory, the
// recovery counters, and the age/outcome of the last flush.
type healthState struct {
	Enabled      bool    `json:"enabled"`
	Snapshots    int     `json:"snapshots"`
	Bytes        int64   `json:"bytes"`
	Quarantines  int64   `json:"quarantines"`
	Evictions    int64   `json:"evictions"`
	Rehydrations int64   `json:"rehydrations"`
	Flushes      int64   `json:"flushes"`
	FlushAgeS    float64 `json:"flush_age_s"` // -1 until the first flush
	LastError    string  `json:"last_error,omitempty"`
}

// stateHealth snapshots the state block for /healthz.
func (s *Server) stateHealth() healthState {
	hs := healthState{FlushAgeS: -1}
	if s.state == nil {
		return hs
	}
	hs.Enabled = true
	st := s.state.Stats()
	hs.Snapshots = st.Snapshots
	hs.Bytes = st.Bytes
	hs.Quarantines = st.Quarantines
	hs.Evictions = st.Evictions
	if s.learned != nil {
		ls := s.learned.Stats()
		hs.Rehydrations = ls.Rehydrations
		hs.Flushes = ls.Flushes
	}
	if nano := s.lastFlushNano.Load(); nano > 0 {
		hs.FlushAgeS = time.Since(time.Unix(0, nano)).Seconds()
	}
	if msg := s.lastFlushErr.Load(); msg != nil {
		hs.LastError = *msg
	}
	return hs
}

// StateStats exposes the persist store counters (zero when state is
// disabled) — a test and ops hook.
func (s *Server) StateStats() persist.Stats {
	if s.state == nil {
		return persist.Stats{}
	}
	return s.state.Stats()
}
