package bdd

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	ab := m.And(a, b)
	if m.Eval(ab, func(v int) bool { return true }) != true {
		t.Error("a∧b under all-true")
	}
	if m.Eval(ab, func(v int) bool { return v != 1 }) != false {
		t.Error("a∧b with b=0")
	}
	or := m.Or(ab, c)
	if !m.Eval(or, func(v int) bool { return v == 2 }) {
		t.Error("(a∧b)∨c with only c")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation not canonical")
	}
	if m.Xor(a, a) != False {
		t.Error("a⊕a should be False")
	}
	if m.And(a, m.Not(a)) != False {
		t.Error("a∧¬a should be False")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("a∨¬a should be True")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	// Build the same function two ways; refs must be identical.
	a, b := m.Var(0), m.Var(1)
	f1 := m.Or(m.And(a, b), m.And(m.Not(a), b))
	f2 := b
	if f1 != f2 {
		t.Errorf("ab + ¬ab should reduce to b: %d vs %d", f1, f2)
	}
	g1 := m.Ite(a, b, m.Not(b))
	g2 := m.Xnor(a, b)
	if g1 != g2 {
		t.Error("ite(a,b,¬b) should equal a↔b")
	}
}

func TestRandomAgainstTruthTable(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 5
	for trial := 0; trial < 60; trial++ {
		m := New(n)
		// Random expression tree over n vars, evaluated both ways.
		type fn struct {
			ref Ref
			tt  uint32 // truth table over 2^5 = 32 rows
		}
		var leaves []fn
		for v := 0; v < n; v++ {
			var tt uint32
			for row := 0; row < 32; row++ {
				if row>>uint(v)&1 == 1 {
					tt |= 1 << uint(row)
				}
			}
			leaves = append(leaves, fn{m.Var(v), tt})
		}
		for step := 0; step < 12; step++ {
			a := leaves[r.Intn(len(leaves))]
			b := leaves[r.Intn(len(leaves))]
			var nf fn
			switch r.Intn(4) {
			case 0:
				nf = fn{m.And(a.ref, b.ref), a.tt & b.tt}
			case 1:
				nf = fn{m.Or(a.ref, b.ref), a.tt | b.tt}
			case 2:
				nf = fn{m.Xor(a.ref, b.ref), a.tt ^ b.tt}
			case 3:
				nf = fn{m.Not(a.ref), ^a.tt}
			}
			leaves = append(leaves, nf)
		}
		f := leaves[len(leaves)-1]
		for row := 0; row < 32; row++ {
			want := f.tt>>uint(row)&1 == 1
			got := m.Eval(f.ref, func(v int) bool { return row>>uint(v)&1 == 1 })
			if got != want {
				t.Fatalf("trial %d row %d: bdd=%v tt=%v", trial, row, got, want)
			}
		}
		// SatCount must match the popcount of the truth table.
		pc := 0
		for row := 0; row < 32; row++ {
			if f.tt>>uint(row)&1 == 1 {
				pc++
			}
		}
		if got := m.SatCount(f.ref); got != float64(pc) {
			t.Fatalf("trial %d: satcount=%v, want %d", trial, got, pc)
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	// ∃a. a∧b = b
	g := m.Exists(f, func(v int) bool { return v == 0 })
	if g != b {
		t.Errorf("∃a.(a∧b) = %d, want b=%d", g, b)
	}
	// ∃a,b. a∧b = true
	g = m.Exists(f, func(v int) bool { return v <= 1 })
	if g != True {
		t.Error("∃a,b.(a∧b) should be True")
	}
	// ∃c (absent) is identity.
	if m.Exists(f, func(v int) bool { return v == 2 }) != f {
		t.Error("quantifying an absent variable changed f")
	}
}

func TestRename(t *testing.T) {
	m := New(4)
	// f over odd vars 1,3; rename to 0,2 (monotone).
	f := m.And(m.Var(1), m.Var(3))
	g := m.Rename(f, func(v int) int { return v - 1 })
	want := m.And(m.Var(0), m.Var(2))
	if g != want {
		t.Errorf("rename result %d, want %d", g, want)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.NVar(2))
	asg, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if asg[0] != true || asg[2] != false {
		t.Errorf("assignment %v", asg)
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("False reported sat")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(20)
	m.MaxNodes = 50
	defer func() {
		if recover() != ErrNodeLimit {
			t.Error("expected ErrNodeLimit panic")
		}
	}()
	// Build something big enough to blow the limit.
	f := True
	for i := 0; i < 20; i += 2 {
		f = m.And(f, m.Xor(m.Var(i), m.Var(i+1)))
	}
	_ = f
}

func TestNumNodesGrows(t *testing.T) {
	m := New(8)
	before := m.NumNodes()
	f := True
	for i := 0; i < 8; i++ {
		f = m.And(f, m.Var(i))
	}
	if m.NumNodes() <= before {
		t.Error("node count did not grow")
	}
	if m.NumVars() != 8 {
		t.Error("NumVars wrong")
	}
}

// TestAndExistsMatchesComposed cross-checks the one-pass relational
// product against the composed And-then-Exists on random functions:
// same manager, same quantifier set, refs must be identical (both are
// canonical).
func TestAndExistsMatchesComposed(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	n := 6
	for trial := 0; trial < 80; trial++ {
		m := New(n)
		rnd := func() Ref {
			f := True
			if r.Intn(2) == 0 {
				f = False
			}
			for i := 0; i < 4; i++ {
				v := m.Var(r.Intn(n))
				if r.Intn(2) == 0 {
					v = m.Not(v)
				}
				switch r.Intn(3) {
				case 0:
					f = m.And(f, v)
				case 1:
					f = m.Or(f, v)
				default:
					f = m.Xor(f, v)
				}
			}
			return f
		}
		f, g := rnd(), rnd()
		qmask := r.Intn(1 << n)
		quant := func(v int) bool { return qmask>>uint(v)&1 == 1 }
		got := m.AndExists(f, g, quant)
		want := m.Exists(m.And(f, g), quant)
		if got != want {
			t.Fatalf("trial %d: AndExists=%d, Exists(And)=%d (qmask=%b)", trial, got, want, qmask)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(0), m.Xor(m.Var(2), m.Var(4)))
	mark := make([]bool, 5)
	m.Support(f, mark)
	want := []bool{true, false, true, false, true}
	for v := range mark {
		if mark[v] != want[v] {
			t.Errorf("support[%d] = %v, want %v", v, mark[v], want[v])
		}
	}
	// Marks accumulate across calls (callers reset between uses).
	m.Support(m.Var(1), mark)
	if !mark[1] || !mark[0] {
		t.Error("Support cleared marks instead of accumulating")
	}
	// Terminals have empty support.
	clear := make([]bool, 5)
	m.Support(True, clear)
	for v, in := range clear {
		if in {
			t.Errorf("True has var %d in support", v)
		}
	}
}

func TestSize(t *testing.T) {
	m := New(4)
	if m.Size(True) != 0 || m.Size(False) != 0 {
		t.Error("terminals must have size 0")
	}
	a := m.Var(0)
	if m.Size(a) != 1 {
		t.Errorf("Size(var) = %d, want 1", m.Size(a))
	}
	// A conjunction chain is one node per variable.
	f := True
	for v := 0; v < 4; v++ {
		f = m.And(f, m.Var(v))
	}
	if m.Size(f) != 4 {
		t.Errorf("Size(a∧b∧c∧d) = %d, want 4", m.Size(f))
	}
	// Size counts distinct nodes, not paths: repeated calls agree and
	// shared subgraphs are not double-counted.
	g := m.Xor(m.Var(0), m.Var(1))
	s1 := m.Size(g)
	if s2 := m.Size(g); s1 != s2 {
		t.Errorf("Size unstable across calls: %d then %d", s1, s2)
	}
	if m.Size(m.Not(f)) != m.Size(f) {
		t.Error("complement changed the node count")
	}
}
