package bdd

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	ab := m.And(a, b)
	if m.Eval(ab, func(v int) bool { return true }) != true {
		t.Error("a∧b under all-true")
	}
	if m.Eval(ab, func(v int) bool { return v != 1 }) != false {
		t.Error("a∧b with b=0")
	}
	or := m.Or(ab, c)
	if !m.Eval(or, func(v int) bool { return v == 2 }) {
		t.Error("(a∧b)∨c with only c")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation not canonical")
	}
	if m.Xor(a, a) != False {
		t.Error("a⊕a should be False")
	}
	if m.And(a, m.Not(a)) != False {
		t.Error("a∧¬a should be False")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("a∨¬a should be True")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	// Build the same function two ways; refs must be identical.
	a, b := m.Var(0), m.Var(1)
	f1 := m.Or(m.And(a, b), m.And(m.Not(a), b))
	f2 := b
	if f1 != f2 {
		t.Errorf("ab + ¬ab should reduce to b: %d vs %d", f1, f2)
	}
	g1 := m.Ite(a, b, m.Not(b))
	g2 := m.Xnor(a, b)
	if g1 != g2 {
		t.Error("ite(a,b,¬b) should equal a↔b")
	}
}

func TestRandomAgainstTruthTable(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 5
	for trial := 0; trial < 60; trial++ {
		m := New(n)
		// Random expression tree over n vars, evaluated both ways.
		type fn struct {
			ref Ref
			tt  uint32 // truth table over 2^5 = 32 rows
		}
		var leaves []fn
		for v := 0; v < n; v++ {
			var tt uint32
			for row := 0; row < 32; row++ {
				if row>>uint(v)&1 == 1 {
					tt |= 1 << uint(row)
				}
			}
			leaves = append(leaves, fn{m.Var(v), tt})
		}
		for step := 0; step < 12; step++ {
			a := leaves[r.Intn(len(leaves))]
			b := leaves[r.Intn(len(leaves))]
			var nf fn
			switch r.Intn(4) {
			case 0:
				nf = fn{m.And(a.ref, b.ref), a.tt & b.tt}
			case 1:
				nf = fn{m.Or(a.ref, b.ref), a.tt | b.tt}
			case 2:
				nf = fn{m.Xor(a.ref, b.ref), a.tt ^ b.tt}
			case 3:
				nf = fn{m.Not(a.ref), ^a.tt}
			}
			leaves = append(leaves, nf)
		}
		f := leaves[len(leaves)-1]
		for row := 0; row < 32; row++ {
			want := f.tt>>uint(row)&1 == 1
			got := m.Eval(f.ref, func(v int) bool { return row>>uint(v)&1 == 1 })
			if got != want {
				t.Fatalf("trial %d row %d: bdd=%v tt=%v", trial, row, got, want)
			}
		}
		// SatCount must match the popcount of the truth table.
		pc := 0
		for row := 0; row < 32; row++ {
			if f.tt>>uint(row)&1 == 1 {
				pc++
			}
		}
		if got := m.SatCount(f.ref); got != float64(pc) {
			t.Fatalf("trial %d: satcount=%v, want %d", trial, got, pc)
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	// ∃a. a∧b = b
	g := m.Exists(f, func(v int) bool { return v == 0 })
	if g != b {
		t.Errorf("∃a.(a∧b) = %d, want b=%d", g, b)
	}
	// ∃a,b. a∧b = true
	g = m.Exists(f, func(v int) bool { return v <= 1 })
	if g != True {
		t.Error("∃a,b.(a∧b) should be True")
	}
	// ∃c (absent) is identity.
	if m.Exists(f, func(v int) bool { return v == 2 }) != f {
		t.Error("quantifying an absent variable changed f")
	}
}

func TestRename(t *testing.T) {
	m := New(4)
	// f over odd vars 1,3; rename to 0,2 (monotone).
	f := m.And(m.Var(1), m.Var(3))
	g := m.Rename(f, func(v int) int { return v - 1 })
	want := m.And(m.Var(0), m.Var(2))
	if g != want {
		t.Errorf("rename result %d, want %d", g, want)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.NVar(2))
	asg, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if asg[0] != true || asg[2] != false {
		t.Errorf("assignment %v", asg)
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("False reported sat")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(20)
	m.MaxNodes = 50
	defer func() {
		if recover() != ErrNodeLimit {
			t.Error("expected ErrNodeLimit panic")
		}
	}()
	// Build something big enough to blow the limit.
	f := True
	for i := 0; i < 20; i += 2 {
		f = m.And(f, m.Xor(m.Var(i), m.Var(i+1)))
	}
	_ = f
}

func TestNumNodesGrows(t *testing.T) {
	m := New(8)
	before := m.NumNodes()
	f := True
	for i := 0; i < 8; i++ {
		f = m.And(f, m.Var(i))
	}
	if m.NumNodes() <= before {
		t.Error("node count did not grow")
	}
	if m.NumVars() != 8 {
		t.Error("NumVars wrong")
	}
}
