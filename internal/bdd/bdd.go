// Package bdd implements reduced ordered binary decision diagrams
// (Bryant, paper ref. [12]) with a hashed unique table and memoized
// apply — the substrate of the BDD-based symbolic model checking
// baseline (internal/mc) whose memory behaviour §1 and §5 contrast
// with the ATPG approach.
package bdd

import "fmt"

// Ref is a node reference. Refs 0 and 1 are the constant terminals.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

const termLevel = int32(1 << 30)

type node struct {
	level  int32
	lo, hi Ref
}

type applyKey struct {
	op   uint8
	f, g Ref
}

// Op codes for Apply.
const (
	opAnd uint8 = iota
	opOr
	opXor
)

// Manager owns the node pool. The zero value is not usable; call New.
type Manager struct {
	nodes    []node
	unique   map[node]Ref
	apply    map[applyKey]Ref
	nVars    int
	MaxNodes int // 0 = unlimited; exceeded operations panic with ErrNodeLimit
	// Interrupt, when non-nil, is polled every interruptInterval node
	// allocations; returning true panics with ErrInterrupted. Because
	// the poll sits inside mk, cancellation lands even in the middle of
	// a single huge apply — the operation a per-iteration check could
	// never escape. The model checker recovers the panic into an
	// Unknown verdict.
	Interrupt func() bool
	allocs    int
	// Size's generation-stamped visited marks and DFS stack, reused
	// across calls (Size runs once per relational-product step).
	sizeSeen  []uint32
	sizeGen   uint32
	sizeStack []Ref
}

// ErrNodeLimit is panicked (and recovered by the model checker) when
// MaxNodes is exceeded — the BDD blow-up signal.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded")

// ErrInterrupted is panicked (and recovered by the model checker) when
// Interrupt reports cancellation mid-operation.
var ErrInterrupted = fmt.Errorf("bdd: interrupted")

// interruptInterval is how many node allocations pass between Interrupt
// polls: rare enough to stay off the profile, frequent enough that a
// blow-up-bound operation (thousands of allocations per millisecond)
// observes cancellation within microseconds.
const interruptInterval = 4096

// New returns a manager with n variables (levels 0..n-1).
func New(n int) *Manager {
	m := &Manager{
		nodes:  make([]node, 2, 1024),
		unique: map[node]Ref{},
		apply:  map[applyKey]Ref{},
		nVars:  n,
	}
	m.nodes[0] = node{level: termLevel}
	m.nodes[1] = node{level: termLevel}
	return m
}

// NumNodes returns the number of allocated nodes (memory proxy).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Node is one exported unique-table entry, used by Snapshot /
// NewFromSnapshot to move a built BDD between managers.
type Node struct {
	Level  int32
	Lo, Hi Ref
}

// Snapshot copies the non-terminal node table. Because mk only ever
// appends nodes whose children already exist, every node's Lo/Hi refer
// to earlier entries (or the terminals), so the slice is a valid
// creation-order replay log. Refs held against this manager index the
// same nodes in any manager built by NewFromSnapshot of this snapshot.
func (m *Manager) Snapshot() []Node {
	out := make([]Node, len(m.nodes)-2)
	for i, n := range m.nodes[2:] {
		out[i] = Node{Level: n.level, Lo: n.lo, Hi: n.hi}
	}
	return out
}

// NewFromSnapshot returns a fresh manager with n variables whose node
// table is pre-populated from a Snapshot. The nodes were canonical in
// the source manager, so they are inserted verbatim (no re-reduction)
// and receive the same Refs they had at Snapshot time; the memoized
// apply cache starts empty. This is how a compiled transition relation
// is shared across concurrent sessions: one immutable snapshot, one
// cheap private manager per session.
func NewFromSnapshot(n int, nodes []Node) *Manager {
	m := New(n)
	m.nodes = make([]node, 2, 2+len(nodes))
	m.nodes[0] = node{level: termLevel}
	m.nodes[1] = node{level: termLevel}
	m.unique = make(map[node]Ref, len(nodes))
	for _, sn := range nodes {
		key := node{level: sn.Level, lo: sn.Lo, hi: sn.Hi}
		r := Ref(len(m.nodes))
		m.nodes = append(m.nodes, key)
		m.unique[key] = r
	}
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nVars }

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if m.MaxNodes > 0 && len(m.nodes) >= m.MaxNodes {
		panic(ErrNodeLimit)
	}
	m.allocs++
	if m.allocs%interruptInterval == 0 && m.Interrupt != nil && m.Interrupt() {
		panic(ErrInterrupted)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.nVars {
		panic("bdd: variable out of range")
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD of ¬v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(int32(v), True, False)
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Xor(f, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.applyOp(opAnd, f, g) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.applyOp(opOr, f, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.applyOp(opXor, f, g) }

// Xnor returns f ↔ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.Not(m.Xor(f, g)) }

// Ite returns if-then-else(f, g, h).
func (m *Manager) Ite(f, g, h Ref) Ref {
	return m.Or(m.And(f, g), m.And(m.Not(f), h))
}

func terminalApply(op uint8, f, g Ref) (Ref, bool) {
	switch op {
	case opAnd:
		if f == False || g == False {
			return False, true
		}
		if f == True {
			return g, true
		}
		if g == True {
			return f, true
		}
		if f == g {
			return f, true
		}
	case opOr:
		if f == True || g == True {
			return True, true
		}
		if f == False {
			return g, true
		}
		if g == False {
			return f, true
		}
		if f == g {
			return f, true
		}
	case opXor:
		if f == g {
			return False, true
		}
		if f == False {
			return g, true
		}
		if g == False {
			return f, true
		}
	}
	return 0, false
}

func (m *Manager) applyOp(op uint8, f, g Ref) Ref {
	if r, ok := terminalApply(op, f, g); ok {
		return r
	}
	// Normalize operand order for the commutative cache.
	if f > g {
		f, g = g, f
	}
	key := applyKey{op, f, g}
	if r, ok := m.apply[key]; ok {
		return r
	}
	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	var f0, f1, g0, g1 Ref
	if lf == top {
		f0, f1 = m.nodes[f].lo, m.nodes[f].hi
	} else {
		f0, f1 = f, f
	}
	if lg == top {
		g0, g1 = m.nodes[g].lo, m.nodes[g].hi
	} else {
		g0, g1 = g, g
	}
	r := m.mk(top, m.applyOp(op, f0, g0), m.applyOp(op, f1, g1))
	m.apply[key] = r
	return r
}

// AndExists returns ∃Q. f ∧ g where Q is the set of variables for
// which quant returns true — the relational product of symbolic image
// computation (Burch/Clarke/Long). Computing the conjunction and the
// quantification in one recursion never materializes the full product
// f ∧ g: whenever the top variable is quantified, a True low branch
// short-circuits the high branch entirely. The memo is per-call
// because it is only valid for one quantifier set.
func (m *Manager) AndExists(f, g Ref, quant func(v int) bool) Ref {
	memo := map[applyKey]Ref{}
	var rec func(f, g Ref) Ref
	rec = func(f, g Ref) Ref {
		if f == False || g == False {
			return False
		}
		if f == True && g == True {
			return True
		}
		if f == True {
			return m.Exists(g, quant)
		}
		if g == True {
			return m.Exists(f, quant)
		}
		if f > g {
			f, g = g, f
		}
		key := applyKey{opAnd, f, g}
		if r, ok := memo[key]; ok {
			return r
		}
		lf, lg := m.level(f), m.level(g)
		top := lf
		if lg < top {
			top = lg
		}
		var f0, f1, g0, g1 Ref
		if lf == top {
			f0, f1 = m.nodes[f].lo, m.nodes[f].hi
		} else {
			f0, f1 = f, f
		}
		if lg == top {
			g0, g1 = m.nodes[g].lo, m.nodes[g].hi
		} else {
			g0, g1 = g, g
		}
		var r Ref
		if quant(int(top)) {
			r = rec(f0, g0)
			if r != True {
				r = m.Or(r, rec(f1, g1))
			}
		} else {
			r = m.mk(top, rec(f0, g0), rec(f1, g1))
		}
		memo[key] = r
		return r
	}
	return rec(f, g)
}

// Support marks the variables f depends on in mark (which must have
// at least NumVars entries). Entries for variables not in f's support
// are left untouched, so one slice can accumulate the union support
// of several functions.
func (m *Manager) Support(f Ref, mark []bool) {
	seen := map[Ref]bool{}
	var rec func(Ref)
	rec = func(f Ref) {
		if f == True || f == False || seen[f] {
			return
		}
		seen[f] = true
		n := m.nodes[f]
		mark[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
}

// Size returns the number of non-terminal nodes in f — the memory
// cost of that one function, as opposed to NumNodes, the manager-wide
// allocation count. The visited set is a flat bool slice indexed by
// Ref rather than a map: Size runs after every relational-product
// step on BDDs that can reach millions of nodes, where per-node map
// hashing would cost more than the product itself.
func (m *Manager) Size(f Ref) int {
	if f == True || f == False {
		return 0
	}
	// Generation-stamped visited marks: one amortized allocation per
	// manager growth, zero clearing per call.
	if len(m.sizeSeen) < len(m.nodes) || m.sizeGen == ^uint32(0) {
		m.sizeSeen = make([]uint32, len(m.nodes))
		m.sizeGen = 0
	}
	m.sizeGen++
	gen := m.sizeGen
	m.sizeStack = append(m.sizeStack[:0], f)
	m.sizeSeen[f] = gen
	count := 0
	for len(m.sizeStack) > 0 {
		r := m.sizeStack[len(m.sizeStack)-1]
		m.sizeStack = m.sizeStack[:len(m.sizeStack)-1]
		count++
		n := m.nodes[r]
		if n.lo > True && m.sizeSeen[n.lo] != gen {
			m.sizeSeen[n.lo] = gen
			m.sizeStack = append(m.sizeStack, n.lo)
		}
		if n.hi > True && m.sizeSeen[n.hi] != gen {
			m.sizeSeen[n.hi] = gen
			m.sizeStack = append(m.sizeStack, n.hi)
		}
	}
	return count
}

// Exists existentially quantifies all variables for which quant
// returns true.
func (m *Manager) Exists(f Ref, quant func(v int) bool) Ref {
	memo := map[Ref]Ref{}
	var rec func(Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := m.nodes[f]
		lo, hi := rec(n.lo), rec(n.hi)
		var r Ref
		if quant(int(n.level)) {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(n.level, lo, hi)
		}
		memo[f] = r
		return r
	}
	return rec(f)
}

// Rename maps each variable to rename(v); the mapping must be strictly
// monotone on the variables present in f (order-preserving), or the
// result would not be reduced-ordered.
func (m *Manager) Rename(f Ref, rename func(v int) int) Ref {
	memo := map[Ref]Ref{}
	var rec func(Ref) Ref
	rec = func(f Ref) Ref {
		if f == True || f == False {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := m.nodes[f]
		r := m.mk(int32(rename(int(n.level))), rec(n.lo), rec(n.hi))
		memo[f] = r
		return r
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments over the full
// variable set (as float64 — counts overflow uint64 quickly).
func (m *Manager) SatCount(f Ref) float64 {
	lvl := func(r Ref) int {
		if l := m.level(r); l != termLevel {
			return int(l)
		}
		return m.nVars
	}
	memo := map[Ref]float64{}
	// rec(f) counts assignments of the variables at levels >= lvl(f).
	var rec func(Ref) float64
	rec = func(f Ref) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		n := m.nodes[f]
		c := rec(n.lo)*pow2(lvl(n.lo)-int(n.level)-1) +
			rec(n.hi)*pow2(lvl(n.hi)-int(n.level)-1)
		memo[f] = c
		return c
	}
	return rec(f) * pow2(lvl(f))
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment as a map var -> value, or
// false if f is unsatisfiable. Unmentioned variables are unconstrained.
func (m *Manager) AnySat(f Ref) (map[int]bool, bool) {
	if f == False {
		return nil, false
	}
	out := map[int]bool{}
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			out[int(n.level)] = true
			f = n.hi
		} else {
			out[int(n.level)] = false
			f = n.lo
		}
	}
	return out, true
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f Ref, assign func(v int) bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign(int(n.level)) {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
