// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for measured-vs-paper results):
//
//	BenchmarkTable1Elaboration    Table 1 (front-end + statistics)
//	BenchmarkTable2/...           Table 2 (one sub-benchmark per property;
//	                              ns/op is the cpu-time column, B/op the
//	                              memory column)
//	BenchmarkFig3...Fig5          the worked examples of §3.1 and §4.1
//	BenchmarkSection4Nonlinear    the §4 multiplier enumeration
//	BenchmarkScalingTokenRing     the §5 scaling claim: ATPG vs SAT-BMC
//	                              vs BDD reachability on growing rings
package repro

import (
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bmc"
	"repro/internal/bv"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/linsolve"
	"repro/internal/mc"
	"repro/internal/modarith"
	"repro/internal/netlist"
	"repro/internal/property"
)

// tableDepth is the canonical per-property frame bound.
func tableDepth(id string) int { return circuits.TableDepth(id) }

func BenchmarkTable1Elaboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		designs, err := circuits.All()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, d := range designs {
			total += d.NL.Stats().Gates
		}
		if total == 0 {
			b.Fatal("no gates")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	designs, err := circuits.All()
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range designs {
		for i := range d.Props {
			p := d.Props[i]
			id := d.PropIDs[i]
			name := fmt.Sprintf("%s_%s", d.Name, id)
			nl := d.NL
			b.Run(name, func(b *testing.B) {
				var last core.Result
				for n := 0; n < b.N; n++ {
					c, err := core.New(nl, core.Options{MaxDepth: tableDepth(id), UseInduction: true})
					if err != nil {
						b.Fatal(err)
					}
					last = c.Check(p)
				}
				if !acceptableVerdict(p, last.Verdict) {
					b.Fatalf("verdict %v", last.Verdict)
				}
				b.ReportMetric(float64(last.Stats.Decisions), "decisions")
				b.ReportMetric(float64(last.Stats.Implications), "implications")
			})
		}
	}
}

func acceptableVerdict(p property.Property, v core.Verdict) bool {
	if p.Kind == property.Witness {
		return v == core.VerdictWitnessFound
	}
	return v == core.VerdictProved || v == core.VerdictProvedBounded
}

// BenchmarkFig3AdderImplication measures the adder backward implication
// of Fig. 3 (out − known input, with implied carry-out).
func BenchmarkFig3AdderImplication(b *testing.B) {
	out := bv.MustParse("4'b0111")
	in := bv.MustParse("4'b1x1x")
	for i := 0; i < b.N; i++ {
		other, borrow := out.SubBorrow(in)
		if borrow != bv.One || other.Bit(1) != bv.Zero {
			b.Fatal("wrong implication")
		}
	}
}

// BenchmarkFig4ComparatorImplication measures the full comparator
// interval implication of Fig. 4 inside the engine.
func BenchmarkFig4ComparatorImplication(b *testing.B) {
	nl := netlist.New("fig4")
	a := nl.AddInput("in_a", 4)
	bb := nl.AddInput("in_b", 4)
	gt := nl.Binary(netlist.KGt, a, bb)
	for i := 0; i < b.N; i++ {
		eng, err := atpg.New(nl, 1, atpg.ModeProve, atpg.Limits{}, nil, false)
		if err != nil {
			b.Fatal(err)
		}
		eng.Require(0, a, bv.MustParse("4'bx01x"))
		eng.Require(0, bb, bv.MustParse("4'b1x0x"))
		eng.Require(0, gt, bv.FromUint64(1, 1))
		if !eng.Propagate() {
			b.Fatal("conflict")
		}
		if eng.Value(0, a).String() != "4'b101x" {
			b.Fatal("wrong implication")
		}
	}
}

// BenchmarkFig5LinearSolve measures the Gauss–Jordan closed-form solve
// of the Fig. 5 linear circuit.
func BenchmarkFig5LinearSolve(b *testing.B) {
	m := modarith.NewMod(4)
	for i := 0; i < b.N; i++ {
		s := linsolve.NewSystem(4, 4)
		s.AddEquation([]uint64{3, m.Neg(1), 0, m.Neg(2)}, 2, 4)
		s.AddEquation([]uint64{1, 2, m.Neg(2), 0}, 10, 4)
		ss := s.Solve()
		if !ss.Feasible || ss.Count() != 256 {
			b.Fatal("wrong solution count")
		}
	}
}

// BenchmarkSection4NonlinearEnum measures the factoring-based
// multiplier enumeration of §4 (the wrap-around example).
func BenchmarkSection4NonlinearEnum(b *testing.B) {
	aCube := bv.FromUint64(3, 4).Zext(4)
	bCube := bv.NewX(3).Zext(4)
	for i := 0; i < b.N; i++ {
		cands := linsolve.SolveMul(4, 12, aCube, bCube, 0)
		if len(cands) != 2 {
			b.Fatal("want exactly the two wrap-around solutions")
		}
	}
}

// BenchmarkModularInverse measures Definition 3/4 inverses at width 64.
func BenchmarkModularInverse(b *testing.B) {
	m := modarith.NewMod(64)
	for i := 0; i < b.N; i++ {
		if _, ok := m.Inverse(0xdeadbeef1); !ok {
			b.Fatal("inverse must exist")
		}
		s := m.InverseWithProduct(0xdeadbeef10, 0xcafebabe0)
		_ = s.Count()
	}
}

// BenchmarkScalingTokenRing regenerates the §5 scaling comparison: the
// token-ring one-hot invariant (p3) checked at growing client counts by
// the word-level ATPG engine, the SAT-based BMC baseline and the
// BDD-based reachability baseline. ns/op gives the time series; B/op
// the memory series; the BDD runs additionally report peak node counts.
func BenchmarkScalingTokenRing(b *testing.B) {
	for _, n := range []int{4, 8, 16, 24} {
		d, err := circuits.TokenRing(n)
		if err != nil {
			b.Fatal(err)
		}
		p := d.Props[0] // p3
		nl := d.NL
		b.Run(fmt.Sprintf("atpg/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := core.New(nl, core.Options{MaxDepth: 3})
				if err != nil {
					b.Fatal(err)
				}
				res := c.Check(p)
				if res.Verdict != core.VerdictProved && res.Verdict != core.VerdictProvedBounded {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
		b.Run(fmt.Sprintf("satbmc/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bmc.Check(nl, p, bmc.Options{MaxDepth: 3})
				if res.Verdict != bmc.BoundedOK {
					b.Fatalf("verdict %v", res.Verdict)
				}
			}
		})
		b.Run(fmt.Sprintf("bddmc/n=%d", n), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				res := mc.Check(nl, p, mc.Options{MaxNodes: 8 << 20})
				if res.Verdict == mc.Falsified {
					b.Fatalf("verdict %v", res.Verdict)
				}
				nodes = res.PeakNodes
			}
			b.ReportMetric(float64(nodes), "bdd-nodes")
		})
	}
}

// BenchmarkEngineComparison runs the same hard property (alarm p9)
// through all three engines — the head-to-head behind §5's efficiency
// discussion.
func BenchmarkEngineComparison(b *testing.B) {
	d, err := circuits.AlarmClock()
	if err != nil {
		b.Fatal(err)
	}
	p9 := d.Props[2]
	nl := d.NL
	b.Run("atpg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, _ := core.New(nl, core.Options{MaxDepth: 8, UseInduction: true})
			res := c.Check(p9)
			if res.Verdict != core.VerdictProved && res.Verdict != core.VerdictProvedBounded {
				b.Fatalf("verdict %v", res.Verdict)
			}
		}
	})
	b.Run("satbmc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := bmc.Check(nl, p9, bmc.Options{MaxDepth: 8})
			if res.Verdict != bmc.BoundedOK {
				b.Fatalf("verdict %v", res.Verdict)
			}
		}
	})
	b.Run("bddmc", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			res := mc.Check(nl, p9, mc.Options{MaxNodes: 8 << 20})
			if res.Verdict == mc.Falsified {
				b.Fatalf("verdict %v", res.Verdict)
			}
			nodes = res.PeakNodes
		}
		b.ReportMetric(float64(nodes), "bdd-nodes")
	})
}

// ---------------------------------------------------------------------
// Ablations: each sub-benchmark removes one engine component on the
// workload that exercises it, quantifying the design choices DESIGN.md
// calls out. The "full" variant is the baseline.

// BenchmarkAblationIdentity measures structural identity (congruence)
// tracking on a consensus bus-contention proof: without it, proving
// Ne(w0, w1) = 0 for two mux-equal 8-bit signals degenerates to value
// enumeration.
func BenchmarkAblationIdentity(b *testing.B) {
	build := func() (*netlist.Netlist, property.Property) {
		nl := netlist.New("consensus")
		bcast := nl.AddInput("bcast", 1)
		d0 := nl.AddInput("d0", 8)
		d1 := nl.AddInput("d1", 8)
		w0 := nl.NamedBuf("w0", d0)
		w1 := nl.Mux(bcast, d1, d0)
		pb := property.Builder{NL: nl}
		en := []netlist.SignalID{bcast, bcast}
		p, _ := property.NewInvariant(nl, "consensus", pb.NoBusContention(en, []netlist.SignalID{w0, w1}))
		return nl, p
	}
	for _, abl := range []struct {
		name  string
		feats atpg.Features
	}{
		{"full", atpg.Features{}},
		{"no-identity", atpg.Features{NoIdentity: true}},
	} {
		b.Run(abl.name, func(b *testing.B) {
			var dec int
			for i := 0; i < b.N; i++ {
				nl, p := build()
				c, _ := core.New(nl, core.Options{MaxDepth: 1, Features: abl.feats})
				res := c.Check(p)
				if res.Verdict != core.VerdictProved {
					b.Fatalf("verdict %v", res.Verdict)
				}
				dec = res.Stats.Decisions
			}
			b.ReportMetric(float64(dec), "decisions")
		})
	}
}

// BenchmarkAblationArithSolver measures the modular arithmetic phase on
// a two-equation datapath witness (a+b and a-b pinned at 12 bits):
// with the solver the values come out of one closed-form solve; without
// it the engine enumerates bits.
func BenchmarkAblationArithSolver(b *testing.B) {
	build := func() (*netlist.Netlist, property.Property) {
		nl := netlist.New("lin")
		a := nl.AddInput("a", 12)
		bIn := nl.AddInput("b", 12)
		sum := nl.Binary(netlist.KAdd, a, bIn)
		diff := nl.Binary(netlist.KSub, a, bIn)
		pb := property.Builder{NL: nl}
		both := nl.Binary(netlist.KAnd, pb.Equals(sum, 3000), pb.Equals(diff, 1000))
		p, _ := property.NewWitness(nl, "solve", both)
		return nl, p
	}
	for _, abl := range []struct {
		name  string
		feats atpg.Features
	}{
		{"full", atpg.Features{}},
		{"no-arith-solver", atpg.Features{NoArithSolver: true}},
	} {
		b.Run(abl.name, func(b *testing.B) {
			var dec int
			for i := 0; i < b.N; i++ {
				nl, p := build()
				c, _ := core.New(nl, core.Options{MaxDepth: 1, Features: abl.feats})
				res := c.Check(p)
				if res.Verdict != core.VerdictWitnessFound {
					b.Fatalf("verdict %v", res.Verdict)
				}
				dec = res.Stats.Decisions
			}
			b.ReportMetric(float64(dec), "decisions")
		})
	}
}

// BenchmarkAblationProbabilityOrder measures the §3.2 legal-probability
// decision ordering on the token-ring one-hot proof.
func BenchmarkAblationProbabilityOrder(b *testing.B) {
	d, err := circuits.TokenRing(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, abl := range []struct {
		name  string
		feats atpg.Features
	}{
		{"full", atpg.Features{}},
		{"no-prob-order", atpg.Features{NoProbabilityOrder: true}},
	} {
		b.Run(abl.name, func(b *testing.B) {
			var dec int
			for i := 0; i < b.N; i++ {
				c, _ := core.New(d.NL, core.Options{MaxDepth: 3, Features: abl.feats})
				res := c.Check(d.Props[0])
				if res.Verdict != core.VerdictProved && res.Verdict != core.VerdictProvedBounded {
					b.Fatalf("verdict %v", res.Verdict)
				}
				dec = res.Stats.Decisions
			}
			b.ReportMetric(float64(dec), "decisions")
		})
	}
}

// BenchmarkAblationLocalFSM measures the §6 local-FSM guidance on the
// paper's hard property p9: with the hour register's state transition
// graph the illegal value 13 is excluded by implication; without it the
// proof needs search plus induction.
func BenchmarkAblationLocalFSM(b *testing.B) {
	d, err := circuits.AlarmClock()
	if err != nil {
		b.Fatal(err)
	}
	p9 := d.Props[2]
	for _, abl := range []struct {
		name    string
		disable bool
	}{
		{"full", false},
		{"no-local-fsm", true},
	} {
		b.Run(abl.name, func(b *testing.B) {
			var dec int
			for i := 0; i < b.N; i++ {
				c, _ := core.New(d.NL, core.Options{MaxDepth: 8, UseInduction: true, DisableLocalFSM: abl.disable})
				res := c.Check(p9)
				if res.Verdict != core.VerdictProved && res.Verdict != core.VerdictProvedBounded {
					b.Fatalf("verdict %v", res.Verdict)
				}
				dec = res.Stats.Decisions
			}
			b.ReportMetric(float64(dec), "decisions")
		})
	}
}
