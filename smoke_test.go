// Bench smoke: a fast regression gate over the committed
// BENCH_PR10.json baseline. The engine is deterministic end to end (the elaborator's
// map iterations are sorted, the search breaks every tie explicitly),
// so each Table-2 property's implication count is an exact, machine-
// independent fingerprint of search behavior. The CI bench-smoke job
// runs this without -short: a change that silently makes the search
// work >10% harder on any pinned property fails here long before it
// would show up as wall time.
package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/circuits"
	"repro/internal/core"
)

type smokeRow struct {
	Verdict      string `json:"verdict"`
	Implications int    `json:"implications"`
	Decisions    int    `json:"decisions"`
}

type smokeBaseline struct {
	Properties map[string]struct {
		After smokeRow `json:"after"`
	} `json:"properties"`
	// Tolerances lists properties with an acknowledged regression and a
	// hard implication ceiling (entries other than "note" carry a
	// ceiling_implications field). The ceiling is fixed at the moment
	// the regression was accepted, so the per-update 10% band cannot
	// silently compound on top of it across baseline refreshes. The
	// PR 3 addr_decoder_p2 entry was retired in PR 10 when the
	// slice-window filter won the implications back (2517 -> 1646);
	// the mechanism stays for the next acknowledged regression.
	Tolerances map[string]json.RawMessage `json:"tolerances"`
}

type toleranceEntry struct {
	CeilingImplications int `json:"ceiling_implications"`
}

// TestBenchSmokeImplications re-checks every Table-2 property and fails
// when its implication count exceeds the committed baseline by more
// than 10%, or its verdict class changes. Improvements (fewer
// implications) pass — update BENCH_PR10.json when landing one, so the
// ratchet keeps tightening.
func TestBenchSmokeImplications(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke runs in the dedicated CI job / full suite")
	}
	raw, err := os.ReadFile("BENCH_PR10.json")
	if err != nil {
		t.Fatalf("baseline missing: %v", err)
	}
	var base smokeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline unreadable: %v", err)
	}
	designs, err := circuits.All()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, d := range designs {
		for i, p := range d.Props {
			id := d.PropIDs[i]
			name := d.Name + "_" + id
			want, ok := base.Properties[name]
			if !ok {
				t.Errorf("%s: not in baseline", name)
				continue
			}
			c, err := core.New(d.NL, core.Options{MaxDepth: tableDepth(id), UseInduction: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			res := c.Check(p)
			checked++
			if got := res.Verdict.String(); got != want.After.Verdict {
				t.Errorf("%s: verdict %s, baseline %s", name, got, want.After.Verdict)
			}
			limit := want.After.Implications + want.After.Implications/10
			// Acknowledged regressions carry a fixed ceiling that wins
			// over the relative band: the band would re-derive from
			// every refreshed baseline and let the regression compound.
			if raw, ok := base.Tolerances[name]; ok {
				var tol toleranceEntry
				if err := json.Unmarshal(raw, &tol); err == nil && tol.CeilingImplications > 0 && tol.CeilingImplications < limit {
					limit = tol.CeilingImplications
				}
			}
			if res.Stats.Implications > limit {
				t.Errorf("%s: %d implications, over limit %d (baseline %d)",
					name, res.Stats.Implications, limit, want.After.Implications)
			} else if res.Stats.Implications != want.After.Implications {
				// Informational: deterministic counts should match the
				// baseline exactly; a silent drift inside the tolerance
				// band still deserves a note in the log.
				t.Logf("%s: %d implications, baseline %d (within tolerance)",
					name, res.Stats.Implications, want.After.Implications)
			}
		}
	}
	if checked != 14 {
		t.Errorf("checked %d properties, want 14", checked)
	}
}
