// Command assertcheck is the framework front door: it parses RTL
// Verilog, elaborates it into a word-level netlist, and checks
// assertion properties with the combined word-level ATPG + modular
// arithmetic engine (or, for comparison, the SAT-BMC and BDD
// baselines).
//
// Usage:
//
//	assertcheck -tables
//	    Regenerate the paper's Table 1 (circuit statistics) and
//	    Table 2 (per-property time and memory) on the built-in
//	    benchmark suite.
//
//	assertcheck -stats design.v -top mod
//	    Print netlist statistics for a design.
//
//	assertcheck design.v -top mod -invariant sig [-depth N] [-engine E]
//	assertcheck design.v -top mod -witness sig [-depth N]
//	    Check that one-bit signal sig is always 1 (invariant) or find
//	    a trace driving it to 1 (witness). Engines: atpg (default),
//	    bmc, bdd.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bmc"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/elab"
	"repro/internal/mc"
	"repro/internal/netlist"
	"repro/internal/property"
	"repro/internal/verilog"
)

func main() {
	var (
		tables    = flag.Bool("tables", false, "regenerate Tables 1 and 2 on the built-in suite")
		stats     = flag.Bool("stats", false, "print netlist statistics")
		top       = flag.String("top", "", "top module name")
		invariant = flag.String("invariant", "", "1-bit signal that must always be 1")
		witness   = flag.String("witness", "", "1-bit signal to drive to 1")
		depth     = flag.Int("depth", 16, "maximum number of time frames")
		induction = flag.Bool("induction", true, "attempt a k-induction proof")
		engine    = flag.String("engine", "atpg", "engine: atpg, bmc or bdd")
	)
	flag.Parse()

	if *tables {
		runTables()
		return
	}
	if flag.NArg() != 1 || *top == "" {
		fmt.Fprintln(os.Stderr, "usage: assertcheck [-tables] | design.v -top mod [-stats | -invariant sig | -witness sig]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ast, err := verilog.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	nl, err := elab.Elaborate(ast, *top, nil)
	if err != nil {
		fatal(err)
	}
	if *stats {
		printStats(nl)
		return
	}
	name, kind := *invariant, property.Invariant
	if *witness != "" {
		name, kind = *witness, property.Witness
	}
	if name == "" {
		fatal(fmt.Errorf("need -stats, -invariant or -witness"))
	}
	sig, ok := nl.SignalByName(name)
	if !ok {
		fatal(fmt.Errorf("no signal %q", name))
	}
	var p property.Property
	if kind == property.Invariant {
		p, err = property.NewInvariant(nl, name, sig)
	} else {
		p, err = property.NewWitness(nl, name, sig)
	}
	if err != nil {
		fatal(err)
	}
	switch *engine {
	case "atpg":
		c, err := core.New(nl, core.Options{MaxDepth: *depth, UseInduction: *induction})
		if err != nil {
			fatal(err)
		}
		res := c.Check(p)
		fmt.Printf("%s: %v (depth %d, %d decisions, %d implications, %v, %.2f MB allocated, %.2f allocs/implication, %.2f allocs/decision)\n",
			p.Name, res.Verdict, res.Depth, res.Stats.Decisions,
			res.Stats.Implications, res.Elapsed.Round(100000), float64(res.AllocBytes)/1e6,
			res.AllocsPerImpl, res.AllocsPerDecision)
		if res.Stats.FrontierScans > 0 {
			fmt.Printf("  frontier: %d scans, %d gate checks, %d skipped (%.1f%% of a full-scan engine's work avoided)\n",
				res.Stats.FrontierScans, res.Stats.FrontierChecks, res.Stats.FrontierSkips,
				100*float64(res.Stats.FrontierSkips)/float64(res.Stats.FrontierChecks+res.Stats.FrontierSkips))
		}
		if res.Stats.Backtracks > 0 {
			fmt.Printf("  conflicts: %d backtracks, %d backjumps skipping %d levels, %d estg reorders (%d past the prune threshold)\n",
				res.Stats.Backtracks, res.Stats.Backjumps, res.Stats.LevelsSkipped,
				res.Stats.EstgReorders, res.Stats.EstgPrunes)
		}
		if res.Trace != nil {
			fmt.Print(res.Trace.Format(nl))
		}
	case "bmc":
		res := bmc.Check(nl, p, bmc.Options{MaxDepth: *depth})
		fmt.Printf("%s: %v (depth %d, %d vars, %d clauses, %d conflicts, %v)\n",
			p.Name, res.Verdict, res.Depth, res.Vars, res.Clauses, res.Conflicts,
			res.Elapsed.Round(100000))
		if res.Trace != nil {
			fmt.Print(res.Trace.Format(nl))
		}
	case "bdd":
		res := mc.Check(nl, p, mc.Options{})
		fmt.Printf("%s: %v (%d iterations, %d BDD nodes, %.0f reachable states, %v)\n",
			p.Name, res.Verdict, res.Iters, res.PeakNodes, res.States,
			res.Elapsed.Round(100000))
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
}

func printStats(nl *netlist.Netlist) {
	st := nl.Stats()
	fmt.Printf("%-14s gates=%d FFs=%d ins=%d outs=%d arith=%d cmp=%d mux=%d\n",
		nl.Name, st.Gates, st.FFs, st.Ins, st.Outs, st.ArithGates, st.Comparators, st.Muxes)
}

// runTables regenerates Table 1 and Table 2.
func runTables() {
	designs, err := circuits.All()
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 1: circuit statistics")
	fmt.Printf("%-14s %7s %7s %6s %5s %6s\n", "ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
	for _, d := range designs {
		st := d.NL.Stats()
		fmt.Printf("%-14s %7d %7d %6d %5d %6d\n", d.Name, d.Lines(), st.Gates, st.FFs, st.Ins, st.Outs)
	}
	fmt.Println()
	fmt.Println("Table 2: experimental results (cpu time in seconds, memory in MB allocated)")
	fmt.Printf("%-14s %-5s %-16s %9s %9s\n", "ckt_name", "prop.", "verdict", "cpu time", "memory")
	for _, d := range designs {
		for i, p := range d.Props {
			id := d.PropIDs[i]
			c, err := core.New(d.NL, core.Options{MaxDepth: tableDepth(id), UseInduction: true})
			if err != nil {
				fatal(err)
			}
			res := c.Check(p)
			fmt.Printf("%-14s %-5s %-16s %9.2f %9.2f\n",
				d.Name, id, res.Verdict.String(), res.Elapsed.Seconds(), float64(res.AllocBytes)/1e6)
		}
	}
}

// tableDepth mirrors the per-property bounds used across the test and
// benchmark suites (EXPERIMENTS.md documents the choices).
func tableDepth(id string) int {
	switch id {
	case "p4":
		return 10
	case "p6", "p8":
		return 4
	case "p9":
		return 8
	default:
		return 3
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "assertcheck:", err)
	os.Exit(1)
}
