// Command assertcheck is the framework front door: it parses RTL
// Verilog, elaborates it into a word-level netlist, and checks
// assertion properties with the combined word-level ATPG + modular
// arithmetic engine — or with the SAT-BMC and BDD baselines, or a
// concurrent portfolio racing all three.
//
// Usage:
//
//	assertcheck -tables
//	    Regenerate the paper's Table 1 (circuit statistics) and
//	    Table 2 (per-property time and memory) on the built-in
//	    benchmark suite.
//
//	assertcheck -stats design.v -top mod
//	    Print netlist statistics for a design.
//
//	assertcheck design.v -top mod -invariant a,b [-witness w] [-depth N]
//	            [-engine E] [-jobs N] [-json] [-timeout D]
//	    Check that each listed one-bit signal is always 1 (invariant)
//	    or find a trace driving it to 1 (witness). Engines: atpg
//	    (default), bmc, bdd, or portfolio (race all three, first
//	    conclusive verdict wins). Multiple properties are checked as a
//	    batch on a -jobs worker pool. -json emits machine-readable
//	    per-property records in input order — results[i] always belongs
//	    to the i-th requested property (invariants first, then
//	    witnesses, each in flag order), whatever order the batch
//	    workers finish in; the schema is shared byte-for-byte with the
//	    assertd serving front end. -timeout bounds the whole run with a
//	    cancellation context: checks still running when it expires
//	    report verdict "unknown" (exit status 4).
//
// Exit status: 0 when every property is proved (or proved-bounded /
// witness-found), 3 when any property is falsified or a requested
// witness does not exist, 4 when any check ends unknown
// (resource-limited or timed out), 1 on errors, 2 on usage mistakes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bmc"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/netlist"
	"repro/internal/property"
)

// Exit codes (documented in the package comment).
const (
	exitOK        = 0
	exitError     = 1
	exitUsage     = 2
	exitFalsified = 3
	exitUnknown   = 4
)

func main() {
	var (
		tables    = flag.Bool("tables", false, "regenerate Tables 1 and 2 on the built-in suite")
		stats     = flag.Bool("stats", false, "print netlist statistics")
		top       = flag.String("top", "", "top module name")
		invariant = flag.String("invariant", "", "comma-separated 1-bit signals that must always be 1")
		witness   = flag.String("witness", "", "comma-separated 1-bit signals to drive to 1")
		depth     = flag.Int("depth", 16, "maximum number of time frames")
		induction = flag.Bool("induction", true, "attempt a k-induction proof")
		engine    = flag.String("engine", core.EngineATPG, "engine: atpg, bmc, bdd or portfolio")
		jobs      = flag.Int("jobs", 1, "worker-pool size for multi-property batches")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON results (input order)")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); expired checks report unknown")
	)
	flag.Parse()

	if *tables {
		runTables()
		return
	}
	if flag.NArg() != 1 || *top == "" {
		fmt.Fprintln(os.Stderr, "usage: assertcheck [-tables] | design.v -top mod [-stats | -invariant sigs | -witness sigs]")
		os.Exit(exitUsage)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// One compiled-design artifact serves everything below: stats,
	// every session, every engine.
	d, err := core.CompileVerilog(string(src), *top)
	if err != nil {
		fatal(err)
	}
	nl := d.Netlist()
	if *stats {
		printStats(nl)
		return
	}
	props, err := property.FromNames(nl, splitNames(*invariant), splitNames(*witness))
	if err != nil {
		fatal(err)
	}
	if len(props) == 0 {
		fatal(fmt.Errorf("need -stats, -invariant or -witness"))
	}

	copts := core.Options{MaxDepth: *depth, UseInduction: *induction}
	if *engine == core.EngineBMC || *engine == core.EngineBDD {
		// The session only supplies problem/worker-pool plumbing for the
		// baseline engines; skip the ATPG-side startup (local-FSM
		// extraction, learned store) they never read.
		copts.DisableLocalFSM = true
		copts.DisableLearnedStore = true
	}
	c, err := d.NewSession(copts)
	if err != nil {
		fatal(err)
	}
	eng, err := selectEngine(c, *engine)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		// The cancellation plumbing reaches every engine loop (ATPG
		// decision rounds, CDCL propagation rounds, BDD node
		// allocations), so an expired budget surfaces as prompt
		// per-property unknown verdicts rather than a killed process.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var results []core.Result
	if len(props) == 1 && *jobs <= 1 {
		// Serial single-property path: the memstats-measured Check for
		// the default engine, a direct adapter call otherwise.
		if eng == nil {
			results = []core.Result{c.CheckCtx(ctx, props[0])}
		} else {
			results = []core.Result{eng.Check(ctx, core.Problem{NL: nl, Prop: props[0], MaxDepth: *depth})}
		}
	} else {
		results = c.CheckAll(ctx, props, core.BatchOptions{Jobs: *jobs, Engine: eng})
	}

	if *jsonOut {
		if err := core.EncodeRecords(os.Stdout, results); err != nil {
			fatal(err)
		}
	} else {
		for _, res := range results {
			printResult(nl, res)
		}
	}
	os.Exit(exitCode(results))
}

// splitNames parses a comma-separated signal-name list.
func splitNames(list string) []string {
	var out []string
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// selectEngine maps the -engine flag to an Engine; nil selects the
// session's default memstats-measured ATPG path. The baseline engines
// are bound to the session so they run over the design's compiled
// caches (BMC frame template, BDD model snapshot).
func selectEngine(c *core.Session, name string) (core.Engine, error) {
	switch name {
	case core.EngineATPG:
		return nil, nil
	case core.EngineBMC:
		return c.BMCEngine(bmc.Options{}), nil
	case core.EngineBDD:
		return c.BDDEngine(mc.Options{}), nil
	case core.EnginePortfolio:
		return c.Portfolio(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

// exitCode folds per-property verdicts into the process exit status:
// any falsification dominates, then any engine error, then any
// unknown, then success.
func exitCode(results []core.Result) int {
	code := exitOK
	for _, res := range results {
		switch res.Verdict {
		case core.VerdictFalsified, core.VerdictNoWitness:
			return exitFalsified
		case core.VerdictError:
			code = exitError
		case core.VerdictUnknown:
			if code == exitOK {
				code = exitUnknown
			}
		}
	}
	return code
}

// printResult renders one result the same way for every engine:
// verdict, engine attribution, depth, elapsed time and the unified
// effort counters, with the ATPG-specific detail lines following when
// the ATPG engine ran.
func printResult(nl *netlist.Netlist, res core.Result) {
	m := res.Metrics
	fmt.Printf("%s: %v [%s] (depth %d, %d decisions, %d conflicts, %d implications, %d mem units, %v",
		res.Property, res.Verdict, res.Engine, res.Depth,
		m.Decisions, m.Conflicts, m.Implications, m.MemUnits,
		res.Elapsed.Round(100000))
	if res.AllocBytes > 0 {
		fmt.Printf(", %.2f MB allocated, %.2f allocs/implication, %.2f allocs/decision",
			float64(res.AllocBytes)/1e6, res.AllocsPerImpl, res.AllocsPerDecision)
	}
	fmt.Println(")")
	if res.Stats.FrontierScans > 0 {
		fmt.Printf("  frontier: %d scans, %d gate checks, %d skipped (%.1f%% of a full-scan engine's work avoided)\n",
			res.Stats.FrontierScans, res.Stats.FrontierChecks, res.Stats.FrontierSkips,
			100*float64(res.Stats.FrontierSkips)/float64(res.Stats.FrontierChecks+res.Stats.FrontierSkips))
	}
	if res.Stats.Backtracks > 0 {
		fmt.Printf("  conflicts: %d backtracks, %d backjumps skipping %d levels, %d estg reorders (%d past the prune threshold)\n",
			res.Stats.Backtracks, res.Stats.Backjumps, res.Stats.LevelsSkipped,
			res.Stats.EstgReorders, res.Stats.EstgPrunes)
	}
	if res.Stats.BitSkips > 0 || res.Stats.BitChainHops > 0 {
		fmt.Printf("  bit-grain: %d chain entries followed, %d skipped (changed bits disjoint from needed bits)\n",
			res.Stats.BitChainHops, res.Stats.BitSkips)
	}
	if res.BDD.Partitions > 0 {
		fmt.Printf("  image: %d transition partitions, peak %d live product nodes, quantification depth %d\n",
			res.BDD.Partitions, res.BDD.PeakImageNodes, res.BDD.QuantDepth)
	}
	if res.Trace != nil {
		fmt.Print(res.Trace.Format(nl))
	}
}

func printStats(nl *netlist.Netlist) {
	st := nl.Stats()
	fmt.Printf("%-14s gates=%d FFs=%d ins=%d outs=%d arith=%d cmp=%d mux=%d\n",
		nl.Name, st.Gates, st.FFs, st.Ins, st.Outs, st.ArithGates, st.Comparators, st.Muxes)
}

// runTables regenerates Table 1 and Table 2.
func runTables() {
	designs, err := circuits.All()
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 1: circuit statistics")
	fmt.Printf("%-14s %7s %7s %6s %5s %6s\n", "ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
	for _, d := range designs {
		st := d.NL.Stats()
		fmt.Printf("%-14s %7d %7d %6d %5d %6d\n", d.Name, d.Lines(), st.Gates, st.FFs, st.Ins, st.Outs)
	}
	fmt.Println()
	fmt.Println("Table 2: experimental results (cpu time in seconds, memory in MB allocated)")
	fmt.Printf("%-14s %-5s %-16s %9s %9s\n", "ckt_name", "prop.", "verdict", "cpu time", "memory")
	for _, d := range designs {
		for i, p := range d.Props {
			id := d.PropIDs[i]
			c, err := core.New(d.NL, core.Options{MaxDepth: circuits.TableDepth(id), UseInduction: true})
			if err != nil {
				fatal(err)
			}
			res := c.Check(p)
			fmt.Printf("%-14s %-5s %-16s %9.2f %9.2f\n",
				d.Name, id, res.Verdict.String(), res.Elapsed.Seconds(), float64(res.AllocBytes)/1e6)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "assertcheck:", err)
	os.Exit(exitError)
}
