// Command assertd is the long-lived serving front end of the assertion
// checker: an HTTP/JSON API over the core batch machinery, with
// compiled designs cached (LRU-bounded) by content hash across
// requests, admission control in front of the check workers, a
// graceful SIGTERM drain, and (opt-in) crash-safe durable state so a
// restarted server comes back warm instead of cold.
//
// Usage:
//
//	assertd [-addr :8545] [-max-jobs N] [-max-concurrent N] [-max-queue N]
//	        [-max-depth N] [-timeout D] [-max-timeout D] [-drain-timeout D]
//	        [-cache-designs N] [-cache-verdicts N] [-faults] [-faults-spec SPEC]
//	        [-state-dir DIR] [-state-interval D] [-state-max-bytes N]
//	        [-state-rewarm N] [-state-estg] [-version-tag V]
//
// Endpoints:
//
//	POST /v1/check
//	    Body: {"design": "<verilog source>", "top": "mod",
//	           "invariants": ["a","b"], "witnesses": ["w"],
//	           "depth": 16, "engine": "atpg|bmc|bdd|portfolio",
//	           "jobs": 8, "timeout_ms": 30000}
//	    Response: the input-ordered per-property record array that
//	    `assertcheck -json` prints — byte-identical schema, so the two
//	    front ends are interchangeable. The X-Design-Cache response
//	    header reports whether the design compile was served from the
//	    content-hash cache ("hit") or performed ("miss"); the
//	    X-Verdict-Cache header ("hits=K misses=M") reports how many
//	    per-property verdicts were replayed from the cone-keyed verdict
//	    cache instead of re-verified — replayed records are byte-identical
//	    to the original run, including elapsed_ns and search metrics.
//	    Overload surfaces as 429 + Retry-After (admission queue full),
//	    draining as 503 + Retry-After; an expired request budget
//	    surfaces as unknown-verdict records, mirroring
//	    `assertcheck -timeout`.
//
//	GET /healthz
//	    Liveness ("ok" or "draining"), uptime and build version,
//	    design-cache and admission counters, and the durable-state
//	    block (snapshot inventory, quarantine/eviction counters, flush
//	    age and last error).
//
// Durable state: with -state-dir the server keeps crash-safe snapshots
// (write-to-temp + fsync + atomic rename, CRC-validated) of its
// design-cache manifest, rewarming the cache at startup by recompiling
// the most-recently-used designs before the listener opens — the first
// post-restart request for a known design is a cache hit. A torn or
// corrupt snapshot (crash mid-write, bit rot) is quarantined to
// *.corrupt with a logged line and the server starts that state cold;
// it never crashes, loops, or changes a verdict. The cone-keyed
// verdict cache (see -cache-verdicts) persists alongside the manifest,
// so cached verdicts survive restarts — including crashes. -state-estg
// additionally persists per-design learned ESTG stores so search
// guidance accumulates across requests and restarts — this makes
// per-request search metrics depend on traffic history (responses stay
// correct but are no longer byte-reproducible), so it is a separate
// opt-in.
//
// On SIGTERM/SIGINT the server stops admitting work (503), drains
// in-flight batches for up to -drain-timeout, snapshots its state, and
// exits.
//
// -faults enables the X-Fault-Inject request header; -faults-spec arms
// a process-global fault rule set (reaching flows with no request
// context, like the state flusher) — both for degradation testing
// only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8545", "listen address")
		maxJobs       = flag.Int("max-jobs", 8, "per-request worker-pool cap")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent check requests (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-concurrent)")
		maxDepth      = flag.Int("max-depth", 0, "per-request frame-bound cap (0 = 128)")
		timeout       = flag.Duration("timeout", 0, "default per-request budget (0 = none); expired checks report unknown, mirroring assertcheck -timeout")
		maxTimeout    = flag.Duration("max-timeout", 0, "ceiling on per-request timeout overrides (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "how long to drain in-flight work on SIGTERM before exiting")
		cacheDesigns  = flag.Int("cache-designs", 0, "compiled-design cache entries (0 = 64, negative = unbounded)")
		cacheVerdicts = flag.Int("cache-verdicts", 0, "cone-keyed verdict cache entries (0 = 4096, negative = disabled); forced off under -state-estg")
		faults        = flag.Bool("faults", false, "enable the X-Fault-Inject header (degradation testing only)")
		faultsSpec    = flag.String("faults-spec", "", "arm a process-global fault rule set, e.g. 'persist.write=short-write:16' (degradation testing only)")
		stateDir      = flag.String("state-dir", "", "directory for crash-safe durable state (empty = stateless)")
		stateInterval = flag.Duration("state-interval", 0, "periodic state flush cadence (0 = 30s)")
		stateMaxBytes = flag.Int64("state-max-bytes", 0, "on-disk snapshot byte budget with LRU eviction (0 = 64 MiB, negative = unbounded)")
		stateRewarm   = flag.Int("state-rewarm", 0, "most-recently-used designs recompiled at startup (0 = 16)")
		stateESTG     = flag.Bool("state-estg", false, "persist per-design learned ESTG stores (metrics become traffic-dependent; see docs)")
		versionTag    = flag.String("version-tag", "dev", "build version reported on /healthz")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		log.Printf("assertd: "+format, args...)
	}
	if *faultsSpec != "" {
		set, err := faultinject.Parse(*faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "assertd:", err)
			os.Exit(2)
		}
		faultinject.SetGlobal(set)
	}

	srv := service.New(service.Options{
		MaxJobs:             *maxJobs,
		MaxConcurrent:       *maxConcurrent,
		MaxQueue:            *maxQueue,
		MaxDepth:            *maxDepth,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		DesignCacheEntries:  *cacheDesigns,
		VerdictCacheEntries: *cacheVerdicts,
		EnableFaults:        *faults,
		StateDir:            *stateDir,
		StateInterval:       *stateInterval,
		StateMaxBytes:       *stateMaxBytes,
		StateRewarm:         *stateRewarm,
		StateESTG:           *stateESTG,
		Version:             *versionTag,
		Logf:                logf,
	})
	if err := srv.StateError(); err != nil {
		fmt.Fprintln(os.Stderr, "assertd: state dir unusable:", err)
		os.Exit(1)
	}
	flushCtx, stopFlusher := context.WithCancel(context.Background())
	defer stopFlusher()
	if srv.StateEnabled() {
		// Warm the design cache from the manifest before the listener
		// opens, so the first request hits.
		srv.Rewarm(flushCtx)
		go srv.RunStateFlusher(flushCtx)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "assertd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "assertd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Graceful drain: refuse new work (the service answers 503),
		// let in-flight batches finish under the drain budget, then
		// force-close whatever is left.
		fmt.Fprintf(os.Stderr, "assertd: %v — draining (timeout %v)\n", s, *drainTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		// Final state flush after the drain: in-flight requests have
		// finished mutating the caches/stores by now, so this snapshot
		// is the complete picture. Runs even when the drain expired —
		// partial state beats none.
		stopFlusher()
		if srv.StateEnabled() {
			if ferr := srv.FlushState(context.Background()); ferr != nil {
				fmt.Fprintf(os.Stderr, "assertd: final state flush failed: %v\n", ferr)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "assertd: drain expired, closing: %v\n", err)
			_ = hs.Close()
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "assertd: drained")
	}
}
