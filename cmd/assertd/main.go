// Command assertd is the long-lived serving front end of the assertion
// checker: an HTTP/JSON API over the core batch machinery, with
// compiled designs cached (LRU-bounded) by content hash across
// requests, admission control in front of the check workers, and a
// graceful SIGTERM drain.
//
// Usage:
//
//	assertd [-addr :8545] [-max-jobs N] [-max-concurrent N] [-max-queue N]
//	        [-max-depth N] [-timeout D] [-max-timeout D] [-drain-timeout D]
//	        [-cache-designs N] [-faults]
//
// Endpoints:
//
//	POST /v1/check
//	    Body: {"design": "<verilog source>", "top": "mod",
//	           "invariants": ["a","b"], "witnesses": ["w"],
//	           "depth": 16, "engine": "atpg|bmc|bdd|portfolio",
//	           "jobs": 8, "timeout_ms": 30000}
//	    Response: the input-ordered per-property record array that
//	    `assertcheck -json` prints — byte-identical schema, so the two
//	    front ends are interchangeable. The X-Design-Cache response
//	    header reports whether the design compile was served from the
//	    content-hash cache ("hit") or performed ("miss").
//	    Overload surfaces as 429 + Retry-After (admission queue full),
//	    draining as 503 + Retry-After; an expired request budget
//	    surfaces as unknown-verdict records, mirroring
//	    `assertcheck -timeout`.
//
//	GET /healthz
//	    Liveness ("ok" or "draining") plus design-cache and admission
//	    counters.
//
// On SIGTERM/SIGINT the server stops admitting work (503), drains
// in-flight batches for up to -drain-timeout, then exits.
//
// -faults enables the X-Fault-Inject request header (see
// internal/faultinject) — degradation testing only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8545", "listen address")
		maxJobs       = flag.Int("max-jobs", 8, "per-request worker-pool cap")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent check requests (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-concurrent)")
		maxDepth      = flag.Int("max-depth", 0, "per-request frame-bound cap (0 = 128)")
		timeout       = flag.Duration("timeout", 0, "default per-request budget (0 = none); expired checks report unknown, mirroring assertcheck -timeout")
		maxTimeout    = flag.Duration("max-timeout", 0, "ceiling on per-request timeout overrides (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "how long to drain in-flight work on SIGTERM before exiting")
		cacheDesigns  = flag.Int("cache-designs", 0, "compiled-design cache entries (0 = 64, negative = unbounded)")
		faults        = flag.Bool("faults", false, "enable the X-Fault-Inject header (degradation testing only)")
	)
	flag.Parse()

	srv := service.New(service.Options{
		MaxJobs:            *maxJobs,
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *maxQueue,
		MaxDepth:           *maxDepth,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		DesignCacheEntries: *cacheDesigns,
		EnableFaults:       *faults,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "assertd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "assertd:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Graceful drain: refuse new work (the service answers 503),
		// let in-flight batches finish under the drain budget, then
		// force-close whatever is left.
		fmt.Fprintf(os.Stderr, "assertd: %v — draining (timeout %v)\n", s, *drainTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "assertd: drain expired, closing: %v\n", err)
			_ = hs.Close()
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "assertd: drained")
	}
}
