// Command assertd is the long-lived serving front end of the assertion
// checker: an HTTP/JSON API over the core batch machinery, with
// compiled designs cached by content hash across requests.
//
// Usage:
//
//	assertd [-addr :8545] [-max-jobs N]
//
// Endpoints:
//
//	POST /v1/check
//	    Body: {"design": "<verilog source>", "top": "mod",
//	           "invariants": ["a","b"], "witnesses": ["w"],
//	           "depth": 16, "engine": "atpg|bmc|bdd|portfolio",
//	           "jobs": 8}
//	    Response: the input-ordered per-property record array that
//	    `assertcheck -json` prints — byte-identical schema, so the two
//	    front ends are interchangeable. The X-Design-Cache response
//	    header reports whether the design compile was served from the
//	    content-hash cache ("hit") or performed ("miss").
//
//	GET /healthz
//	    Liveness plus the design-cache size.
//
// The first request for a design pays the full front end (parse →
// elaborate → design compilation); every later request for the same
// source — any property set, any engine — starts at session setup,
// and the per-engine compiled caches (BMC frame template, BDD model
// snapshot, ATPG prep tables) are shared across concurrent requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8545", "listen address")
		maxJobs = flag.Int("max-jobs", 8, "per-request worker-pool cap")
	)
	flag.Parse()

	srv := service.New(service.Options{MaxJobs: *maxJobs})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "assertd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "assertd:", err)
			os.Exit(1)
		}
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
}
