// Command linsolve solves systems of linear bit-vector constraints in
// the modular number system Z/2^n and prints all solutions in the
// paper's closed form x = x0 + N·f (§4.1).
//
// The system is read from stdin, one equation per line:
//
//	linsolve -width 4 <<EOF
//	3 -1 0 -2 = 2
//	1 2 -2 0 = 10
//	EOF
//
// Negative coefficients are taken mod 2^width. With -enumerate the
// full solution set is listed (when small enough).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/linsolve"
	"repro/internal/modarith"
)

func main() {
	var (
		width = flag.Int("width", 8, "bit width n of the modulus 2^n")
		enum  = flag.Int("enumerate", 0, "list up to this many solutions")
	)
	flag.Parse()

	m := modarith.NewMod(*width)
	var rows [][]uint64
	var rhs []uint64
	vars := -1
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "=")
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad equation %q (want: c1 c2 ... = rhs)", line))
		}
		var coeffs []uint64
		for _, f := range strings.Fields(parts[0]) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				fatal(err)
			}
			coeffs = append(coeffs, m.Reduce(uint64(v)))
		}
		r, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			fatal(err)
		}
		if vars < 0 {
			vars = len(coeffs)
		} else if vars != len(coeffs) {
			fatal(fmt.Errorf("inconsistent variable count"))
		}
		rows = append(rows, coeffs)
		rhs = append(rhs, m.Reduce(uint64(r)))
	}
	if vars <= 0 {
		fatal(fmt.Errorf("no equations"))
	}
	sys := linsolve.NewSystem(*width, vars)
	for i, row := range rows {
		if err := sys.AddEquation(row, rhs[i], *width); err != nil {
			fatal(err)
		}
	}
	ss := sys.Solve()
	if !ss.Feasible {
		fmt.Printf("infeasible over Z/2^%d\n", *width)
		os.Exit(1)
	}
	fmt.Printf("solutions over Z/2^%d: %d total\n", *width, ss.Count())
	fmt.Printf("x0 = %v\n", ss.X0)
	for i, g := range ss.Gens {
		fmt.Printf("gen %d (order %d): %v\n", i, ss.GenOrders[i], g)
	}
	if *enum > 0 {
		n := 0
		ss.Enumerate(func(x []uint64) bool {
			fmt.Printf("  %v\n", x)
			n++
			return n < *enum
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linsolve:", err)
	os.Exit(1)
}
