// Command assertload is a minimal closed-loop load generator for the
// serving stack (assertd or assertrouter — same API): N workers POST
// /v1/check batches back-to-back for a fixed duration and a latency /
// throughput summary comes out as JSON.
//
// Usage:
//
//	assertload -url http://localhost:8545 -design d.v -top mod \
//	           [-invariants a,b] [-witnesses w] [-depth 16] [-jobs 4] \
//	           [-concurrency 8] [-duration 10s] [-vary N] [-seed S] \
//	           [-churn N]
//
// -vary N spreads the load over N content-distinct variants of the
// design (a tagged comment is appended to the source, changing the
// content hash but not the semantics), exercising the server's design
// cache and, through assertrouter, the consistent-hash ring the way a
// mixed-design workload would. Each worker draws its variant sequence
// from a seeded PRNG: -seed S pins the stream so two runs offer the
// identical variant order (per worker), and the seed actually used —
// pinned or self-picked — is echoed in the output JSON for replay.
//
// Flow control is honored, not fought: a 429/503 answer counts as a
// shed and the worker sleeps the server's Retry-After hint before its
// next request, so a saturated server sees the backoff the API asks
// for. The summary reports served/shed/error counts, p50/p90/p99
// latency of served requests, throughput and the design-cache hit
// count.
//
// -churn N switches to edit-churn mode, a sequential scenario that
// measures the server's cone-granular verdict cache instead of raw
// throughput: one cold POST of the design, one unedited resubmit, then
// N iterations that each rewrite the integer literal on one
// `// churn:`-tagged source line (round-robin over the tags, always
// editing the pristine source — edits do not accumulate) and resubmit.
// Each warm response's X-Verdict-Cache header and per-record bytes are
// compared against the cold baseline: records outside the edited cone
// must replay byte-identically, and the fresh work per resubmit (the
// implications of the changed records) is reported against the cold
// total as implication_ratio. Exits non-zero if any supposedly
// untouched record changed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type checkRequest struct {
	Design     string   `json:"design"`
	Top        string   `json:"top"`
	Invariants []string `json:"invariants,omitempty"`
	Witnesses  []string `json:"witnesses,omitempty"`
	Depth      int      `json:"depth,omitempty"`
	Jobs       int      `json:"jobs,omitempty"`
}

type summary struct {
	Target        string  `json:"target"`
	Concurrency   int     `json:"concurrency"`
	DurationS     float64 `json:"duration_s"`
	Variants      int     `json:"variants"`
	Seed          int64   `json:"seed"`
	Requests      int64   `json:"requests"`
	Served        int64   `json:"served"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	CacheHits     int64   `json:"cache_hits"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

func main() {
	var (
		url           = flag.String("url", "http://localhost:8545", "serving endpoint (assertd or assertrouter)")
		designPath    = flag.String("design", "", "Verilog design file (required)")
		top           = flag.String("top", "", "top module name (required)")
		invariants    = flag.String("invariants", "", "comma-separated invariant signal names")
		witnesses     = flag.String("witnesses", "", "comma-separated witness signal names")
		depth         = flag.Int("depth", 8, "frame bound per property")
		jobs          = flag.Int("jobs", 4, "per-request worker-pool hint")
		concurrency   = flag.Int("concurrency", 8, "concurrent closed-loop workers")
		duration      = flag.Duration("duration", 10*time.Second, "how long to generate load")
		vary          = flag.Int("vary", 1, "spread load over N content-distinct design variants")
		seed          = flag.Int64("seed", 0, "PRNG seed for the -vary variant stream (0 = pick one; echoed in the summary)")
		maxRetryAfter = flag.Duration("max-retry-after", 5*time.Second, "cap on honored Retry-After hints")
		churn         = flag.Int("churn", 0, "edit-churn mode: N sequential one-line-edit resubmits measuring the verdict cache (0 = load mode)")
	)
	flag.Parse()

	if *designPath == "" || *top == "" {
		fmt.Fprintln(os.Stderr, "assertload: -design and -top are required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*designPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assertload:", err)
		os.Exit(2)
	}
	inv := splitNames(*invariants)
	wit := splitNames(*witnesses)
	if len(inv)+len(wit) == 0 {
		fmt.Fprintln(os.Stderr, "assertload: need at least one -invariants or -witnesses name")
		os.Exit(2)
	}
	if *churn > 0 {
		os.Exit(runChurn(*url, string(src), *top, inv, wit, *depth, *jobs, *churn))
	}
	if *vary < 1 {
		*vary = 1
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	// Pre-marshal one request body per variant; each worker draws its
	// variant order from a per-worker PRNG derived from -seed, so a
	// pinned seed reproduces the exact offered stream.
	bodies := make([][]byte, *vary)
	for i := range bodies {
		design := string(src)
		if *vary > 1 {
			// Content-hash-distinct, semantically identical.
			design += fmt.Sprintf("\n// assertload variant %d\n", i)
		}
		b, err := json.Marshal(checkRequest{
			Design: design, Top: *top,
			Invariants: inv, Witnesses: wit,
			Depth: *depth, Jobs: *jobs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "assertload:", err)
			os.Exit(2)
		}
		bodies[i] = b
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  int64
		served    int64
		shed      int64
		errs      int64
		cacheHits int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{}
	endpoint := strings.TrimRight(*url, "/") + "/v1/check"

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			local := make([]time.Duration, 0, 1024)
			var lRequests, lServed, lShed, lErrs, lHits int64
			for ctx.Err() == nil {
				body := bodies[rng.Intn(len(bodies))]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
				if err != nil {
					lErrs++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						break
					}
					lRequests++
					lErrs++
					continue
				}
				lRequests++
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					lServed++
					local = append(local, time.Since(t0))
					if resp.Header.Get("X-Design-Cache") == "hit" {
						lHits++
					}
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
					// Honor the server's flow control: sleep the hint
					// before offering more load.
					lShed++
					wait := time.Second
					if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
						wait = time.Duration(secs) * time.Second
					}
					if wait > *maxRetryAfter {
						wait = *maxRetryAfter
					}
					select {
					case <-time.After(wait):
					case <-ctx.Done():
					}
				default:
					lErrs++
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			requests += lRequests
			served += lServed
			shed += lShed
			errs += lErrs
			cacheHits += lHits
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s := summary{
		Target:      *url,
		Concurrency: *concurrency,
		DurationS:   elapsed.Seconds(),
		Variants:    *vary,
		Seed:        *seed,
		Requests:    requests,
		Served:      served,
		Shed:        shed,
		Errors:      errs,
		CacheHits:   cacheHits,
		P50Ms:       quantileMs(latencies, 0.50),
		P90Ms:       quantileMs(latencies, 0.90),
		P99Ms:       quantileMs(latencies, 0.99),
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(served) / elapsed.Seconds()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(os.Stderr, "assertload:", err)
		os.Exit(1)
	}
	if served == 0 {
		os.Exit(1)
	}
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// quantileMs returns the q-quantile of sorted latencies in
// milliseconds (0 when nothing was served).
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// churnSummary is the edit-churn mode's output JSON.
type churnSummary struct {
	Target     string `json:"target"`
	Mode       string `json:"mode"`
	Iterations int    `json:"iterations"`
	Properties int    `json:"properties"`
	ChurnSites int    `json:"churn_sites"`
	// Cold baseline: full verification of every property.
	ColdImplications int64   `json:"cold_implications"`
	ColdMs           float64 `json:"cold_ms"`
	// Unedited resubmit: must replay every record byte-identically.
	RepeatIdentical bool `json:"repeat_identical"`
	// Warm one-edit resubmits. Fresh implications per iteration are the
	// implications of the records whose bytes changed vs the cold
	// baseline — replayed records are byte-identical, so a changed
	// record is exactly a re-verified one.
	WarmFreshImplicationsAvg float64 `json:"warm_fresh_implications_avg"`
	WarmMsAvg                float64 `json:"warm_ms_avg"`
	ImplicationRatio         float64 `json:"implication_ratio"`
	VerdictHits              int64   `json:"verdict_hits"`
	VerdictMisses            int64   `json:"verdict_misses"`
	VerdictHitRate           float64 `json:"verdict_hit_rate"`
	ChangedRecords           int64   `json:"changed_records"`
	// True when every warm iteration changed no more records than the
	// server reported as cache misses — i.e. nothing outside the edited
	// cone was perturbed.
	UntouchedRecordsIdentical bool `json:"untouched_records_identical"`
}

// churnLit matches the sized decimal literal on a churn-tagged line.
var churnLit = regexp.MustCompile(`(\d+)'d(\d+)`)

// runChurn drives the sequential edit-churn scenario and returns the
// process exit code.
func runChurn(url, src, top string, inv, wit []string, depth, jobs, iterations int) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "assertload: "+format+"\n", args...)
		return 1
	}
	lines := strings.Split(src, "\n")
	var sites []int
	for i, l := range lines {
		if strings.Contains(l, "// churn:") && churnLit.MatchString(l) {
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 {
		return fail("-churn needs at least one '// churn:'-tagged line with a sized decimal literal in the design")
	}
	endpoint := strings.TrimRight(url, "/") + "/v1/check"
	client := &http.Client{}
	marshal := func(design string) []byte {
		b, err := json.Marshal(checkRequest{
			Design: design, Top: top,
			Invariants: inv, Witnesses: wit,
			Depth: depth, Jobs: jobs,
		})
		if err != nil {
			panic(err)
		}
		return b
	}

	cold, err := postChurn(client, endpoint, marshal(src))
	if err != nil {
		return fail("cold request: %v", err)
	}
	var coldImpl int64
	for _, r := range cold.records {
		coldImpl += r.impl
	}

	repeat, err := postChurn(client, endpoint, marshal(src))
	if err != nil {
		return fail("repeat request: %v", err)
	}
	repeatIdentical := len(repeat.records) == len(cold.records)
	for i := range repeat.records {
		if !repeatIdentical || !bytes.Equal(repeat.records[i].raw, cold.records[i].raw) {
			repeatIdentical = false
			break
		}
	}

	s := churnSummary{
		Target:     url,
		Mode:       "churn",
		Iterations: iterations,
		Properties: len(cold.records),
		ChurnSites: len(sites),

		ColdImplications:          coldImpl,
		ColdMs:                    float64(cold.elapsed) / float64(time.Millisecond),
		RepeatIdentical:           repeatIdentical,
		UntouchedRecordsIdentical: true,
	}
	var warmFresh, warmMs float64
	for it := 1; it <= iterations; it++ {
		// Always edit the pristine source: one edit per request, not a
		// growing diff.
		line := sites[(it-1)%len(sites)]
		edited := append([]string(nil), lines...)
		edited[line] = churnLit.ReplaceAllStringFunc(edited[line], func(m string) string {
			g := churnLit.FindStringSubmatch(m)
			return fmt.Sprintf("%s'd%d", g[1], it%250+1)
		})
		warm, err := postChurn(client, endpoint, marshal(strings.Join(edited, "\n")))
		if err != nil {
			return fail("churn iteration %d: %v", it, err)
		}
		if warm.hits < 0 {
			return fail("no X-Verdict-Cache header on iteration %d: is the server's verdict cache enabled?", it)
		}
		if len(warm.records) != len(cold.records) {
			return fail("churn iteration %d: %d records, cold had %d", it, len(warm.records), len(cold.records))
		}
		var changed, fresh int64
		for i, r := range warm.records {
			if !bytes.Equal(r.raw, cold.records[i].raw) {
				changed++
				fresh += r.impl
			}
		}
		if changed > warm.misses {
			s.UntouchedRecordsIdentical = false
		}
		s.VerdictHits += warm.hits
		s.VerdictMisses += warm.misses
		s.ChangedRecords += changed
		warmFresh += float64(fresh)
		warmMs += float64(warm.elapsed) / float64(time.Millisecond)
	}
	s.WarmFreshImplicationsAvg = warmFresh / float64(iterations)
	s.WarmMsAvg = warmMs / float64(iterations)
	if s.WarmFreshImplicationsAvg > 0 {
		s.ImplicationRatio = float64(coldImpl) / s.WarmFreshImplicationsAvg
	} else {
		s.ImplicationRatio = float64(coldImpl)
	}
	if total := s.VerdictHits + s.VerdictMisses; total > 0 {
		s.VerdictHitRate = float64(s.VerdictHits) / float64(total)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fail("%v", err)
	}
	if !s.UntouchedRecordsIdentical || !repeatIdentical {
		return 1
	}
	return 0
}

// churnResponse is one /v1/check answer with per-record raw bytes kept
// for byte-identity comparison.
type churnResponse struct {
	records []churnRecord
	hits    int64 // -1 when the X-Verdict-Cache header was absent
	misses  int64
	elapsed time.Duration
}

type churnRecord struct {
	raw  json.RawMessage
	impl int64
}

func postChurn(client *http.Client, endpoint string, body []byte) (*churnResponse, error) {
	req, err := http.NewRequest(http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	out := &churnResponse{hits: -1, misses: -1, elapsed: time.Since(t0)}
	if h := resp.Header.Get("X-Verdict-Cache"); h != "" {
		if _, err := fmt.Sscanf(h, "hits=%d misses=%d", &out.hits, &out.misses); err != nil {
			return nil, fmt.Errorf("bad X-Verdict-Cache header %q", h)
		}
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		return nil, fmt.Errorf("bad response body: %v", err)
	}
	for _, r := range raws {
		var rec struct {
			Implications int64 `json:"implications"`
		}
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, fmt.Errorf("bad record: %v", err)
		}
		out.records = append(out.records, churnRecord{raw: r, impl: rec.Implications})
	}
	return out, nil
}
