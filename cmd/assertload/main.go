// Command assertload is a minimal closed-loop load generator for the
// serving stack (assertd or assertrouter — same API): N workers POST
// /v1/check batches back-to-back for a fixed duration and a latency /
// throughput summary comes out as JSON.
//
// Usage:
//
//	assertload -url http://localhost:8545 -design d.v -top mod \
//	           [-invariants a,b] [-witnesses w] [-depth 16] [-jobs 4] \
//	           [-concurrency 8] [-duration 10s] [-vary N] [-seed S]
//
// -vary N spreads the load over N content-distinct variants of the
// design (a tagged comment is appended to the source, changing the
// content hash but not the semantics), exercising the server's design
// cache and, through assertrouter, the consistent-hash ring the way a
// mixed-design workload would. Each worker draws its variant sequence
// from a seeded PRNG: -seed S pins the stream so two runs offer the
// identical variant order (per worker), and the seed actually used —
// pinned or self-picked — is echoed in the output JSON for replay.
//
// Flow control is honored, not fought: a 429/503 answer counts as a
// shed and the worker sleeps the server's Retry-After hint before its
// next request, so a saturated server sees the backoff the API asks
// for. The summary reports served/shed/error counts, p50/p90/p99
// latency of served requests, throughput and the design-cache hit
// count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type checkRequest struct {
	Design     string   `json:"design"`
	Top        string   `json:"top"`
	Invariants []string `json:"invariants,omitempty"`
	Witnesses  []string `json:"witnesses,omitempty"`
	Depth      int      `json:"depth,omitempty"`
	Jobs       int      `json:"jobs,omitempty"`
}

type summary struct {
	Target        string  `json:"target"`
	Concurrency   int     `json:"concurrency"`
	DurationS     float64 `json:"duration_s"`
	Variants      int     `json:"variants"`
	Seed          int64   `json:"seed"`
	Requests      int64   `json:"requests"`
	Served        int64   `json:"served"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	CacheHits     int64   `json:"cache_hits"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

func main() {
	var (
		url           = flag.String("url", "http://localhost:8545", "serving endpoint (assertd or assertrouter)")
		designPath    = flag.String("design", "", "Verilog design file (required)")
		top           = flag.String("top", "", "top module name (required)")
		invariants    = flag.String("invariants", "", "comma-separated invariant signal names")
		witnesses     = flag.String("witnesses", "", "comma-separated witness signal names")
		depth         = flag.Int("depth", 8, "frame bound per property")
		jobs          = flag.Int("jobs", 4, "per-request worker-pool hint")
		concurrency   = flag.Int("concurrency", 8, "concurrent closed-loop workers")
		duration      = flag.Duration("duration", 10*time.Second, "how long to generate load")
		vary          = flag.Int("vary", 1, "spread load over N content-distinct design variants")
		seed          = flag.Int64("seed", 0, "PRNG seed for the -vary variant stream (0 = pick one; echoed in the summary)")
		maxRetryAfter = flag.Duration("max-retry-after", 5*time.Second, "cap on honored Retry-After hints")
	)
	flag.Parse()

	if *designPath == "" || *top == "" {
		fmt.Fprintln(os.Stderr, "assertload: -design and -top are required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*designPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assertload:", err)
		os.Exit(2)
	}
	inv := splitNames(*invariants)
	wit := splitNames(*witnesses)
	if len(inv)+len(wit) == 0 {
		fmt.Fprintln(os.Stderr, "assertload: need at least one -invariants or -witnesses name")
		os.Exit(2)
	}
	if *vary < 1 {
		*vary = 1
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	// Pre-marshal one request body per variant; each worker draws its
	// variant order from a per-worker PRNG derived from -seed, so a
	// pinned seed reproduces the exact offered stream.
	bodies := make([][]byte, *vary)
	for i := range bodies {
		design := string(src)
		if *vary > 1 {
			// Content-hash-distinct, semantically identical.
			design += fmt.Sprintf("\n// assertload variant %d\n", i)
		}
		b, err := json.Marshal(checkRequest{
			Design: design, Top: *top,
			Invariants: inv, Witnesses: wit,
			Depth: *depth, Jobs: *jobs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "assertload:", err)
			os.Exit(2)
		}
		bodies[i] = b
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  int64
		served    int64
		shed      int64
		errs      int64
		cacheHits int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{}
	endpoint := strings.TrimRight(*url, "/") + "/v1/check"

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			local := make([]time.Duration, 0, 1024)
			var lRequests, lServed, lShed, lErrs, lHits int64
			for ctx.Err() == nil {
				body := bodies[rng.Intn(len(bodies))]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
				if err != nil {
					lErrs++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						break
					}
					lRequests++
					lErrs++
					continue
				}
				lRequests++
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					lServed++
					local = append(local, time.Since(t0))
					if resp.Header.Get("X-Design-Cache") == "hit" {
						lHits++
					}
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
					// Honor the server's flow control: sleep the hint
					// before offering more load.
					lShed++
					wait := time.Second
					if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
						wait = time.Duration(secs) * time.Second
					}
					if wait > *maxRetryAfter {
						wait = *maxRetryAfter
					}
					select {
					case <-time.After(wait):
					case <-ctx.Done():
					}
				default:
					lErrs++
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			requests += lRequests
			served += lServed
			shed += lShed
			errs += lErrs
			cacheHits += lHits
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s := summary{
		Target:      *url,
		Concurrency: *concurrency,
		DurationS:   elapsed.Seconds(),
		Variants:    *vary,
		Seed:        *seed,
		Requests:    requests,
		Served:      served,
		Shed:        shed,
		Errors:      errs,
		CacheHits:   cacheHits,
		P50Ms:       quantileMs(latencies, 0.50),
		P90Ms:       quantileMs(latencies, 0.90),
		P99Ms:       quantileMs(latencies, 0.99),
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(served) / elapsed.Seconds()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(os.Stderr, "assertload:", err)
		os.Exit(1)
	}
	if served == 0 {
		os.Exit(1)
	}
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// quantileMs returns the q-quantile of sorted latencies in
// milliseconds (0 when nothing was served).
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
