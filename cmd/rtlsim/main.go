// Command rtlsim is a three-valued cycle simulator for the Verilog
// subset. Stimulus comes from stdin, one cycle per line, as
// space-separated name=value pairs (values in Verilog literal syntax;
// unknown bits allowed: en=1'b1 data=8'hx0). After each cycle the
// named watch signals (-watch a,b,c; default: all outputs) are printed.
//
//	rtlsim design.v -top mod [-watch sig,sig] [-cycles N] < stimulus.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bv"
	"repro/internal/elab"
	"repro/internal/sim"
	"repro/internal/verilog"
)

func main() {
	var (
		top    = flag.String("top", "", "top module name")
		watch  = flag.String("watch", "", "comma-separated signals to print (default: outputs)")
		cycles = flag.Int("cycles", 0, "stop after N cycles (0 = until stdin ends)")
	)
	flag.Parse()
	if flag.NArg() != 1 || *top == "" {
		fmt.Fprintln(os.Stderr, "usage: rtlsim design.v -top mod [-watch a,b] [-cycles N] < stimulus")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	ast, err := verilog.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	nl, err := elab.Elaborate(ast, *top, nil)
	if err != nil {
		fatal(err)
	}
	s, err := sim.New(nl)
	if err != nil {
		fatal(err)
	}
	var watches []string
	if *watch != "" {
		watches = strings.Split(*watch, ",")
	} else {
		for name := range nl.POs {
			watches = append(watches, name)
		}
	}
	in := bufio.NewScanner(os.Stdin)
	cycle := 0
	for (*cycles == 0 || cycle < *cycles) && in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			nv := strings.SplitN(tok, "=", 2)
			if len(nv) != 2 {
				fatal(fmt.Errorf("cycle %d: bad stimulus token %q", cycle, tok))
			}
			val, err := bv.ParseVerilog(nv[1])
			if err != nil {
				fatal(fmt.Errorf("cycle %d: %v", cycle, err))
			}
			sig, ok := nl.SignalByName(nv[0])
			if !ok {
				fatal(fmt.Errorf("cycle %d: no signal %q", cycle, nv[0]))
			}
			if val.Width() != nl.Width(sig) {
				val = val.Zext(nl.Width(sig))
			}
			if err := s.SetInput(sig, val); err != nil {
				fatal(fmt.Errorf("cycle %d: %v", cycle, err))
			}
		}
		s.Eval()
		fmt.Printf("cycle %d:", cycle)
		for _, w := range watches {
			v, err := s.GetName(w)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %s=%v", w, v)
		}
		fmt.Println()
		s.Step()
		cycle++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtlsim:", err)
	os.Exit(1)
}
