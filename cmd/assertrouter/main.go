// Command assertrouter is the multi-replica front end of the assertion
// checker: it serves the same POST /v1/check API assertd does, but
// shards each batch across a fleet of assertd replicas by consistent
// hash of the design content (keeping every replica's compiled-design
// cache hot for its slice of the design space) and reassembles the
// input-ordered response — byte-identical to a single replica's answer
// modulo elapsed_ns.
//
// Usage:
//
//	assertrouter -replicas http://h1:8545,http://h2:8545[,...]
//	             [-addr :8550] [-spread N] [-hedge] [-faults]
//	             [-health-interval D] [-breaker-cooldown D]
//	             [-max-attempts N] [-retry-same N] [-drain-timeout D]
//
// Failure handling (see internal/cluster): per-replica health checks
// drive ring membership (draining and dead replicas leave the ring);
// 429/503 shed answers are retried on the same replica honoring
// Retry-After; hard failures move the shard along the ring, feed a
// per-replica circuit breaker, and mid-batch the failed replica's
// unanswered properties are re-sharded across the survivors. -hedge
// additionally races slow sub-requests against the next candidate.
//
// GET /healthz aggregates the fleet: per-replica state, breaker
// position and served/shed ledgers plus the router's own routing
// counters. On SIGTERM/SIGINT the router refuses new batches (503),
// drains in-flight scatter/gathers, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr            = flag.String("addr", ":8550", "listen address")
		replicas        = flag.String("replicas", "", "comma-separated assertd base URLs (required)")
		spread          = flag.Int("spread", 0, "max replicas one batch is sharded across (0 = all healthy)")
		maxAttempts     = flag.Int("max-attempts", 0, "replicas tried per shard before giving up (0 = 3)")
		retrySame       = flag.Int("retry-same", 0, "same-replica retries of a shed (429/503) answer (0 = 2)")
		maxFailover     = flag.Int("max-failover", 0, "re-shard recursion depth after replica failures (0 = 3)")
		healthInterval  = flag.Duration("health-interval", 0, "replica /healthz poll period (0 = 500ms)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "circuit breaker open -> half-open delay (0 = 2s)")
		hedge           = flag.Bool("hedge", false, "hedge slow sub-requests against the next ring candidate")
		hedgeMinDelay   = flag.Duration("hedge-min-delay", 0, "floor of the p99-derived hedge delay (0 = 50ms)")
		drainTimeout    = flag.Duration("drain-timeout", 10*time.Second, "how long to drain in-flight batches on SIGTERM before exiting")
		faults          = flag.Bool("faults", false, "enable the X-Fault-Inject header incl. route.* points (degradation testing only)")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "assertrouter: -replicas is required (comma-separated assertd base URLs)")
		os.Exit(2)
	}

	rt, err := cluster.New(cluster.Options{
		Replicas:        urls,
		Spread:          *spread,
		MaxAttempts:     *maxAttempts,
		RetrySame:       *retrySame,
		MaxFailover:     *maxFailover,
		HealthInterval:  *healthInterval,
		BreakerCooldown: *breakerCooldown,
		Hedge:           *hedge,
		HedgeMinDelay:   *hedgeMinDelay,
		EnableFaults:    *faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "assertrouter:", err)
		os.Exit(2)
	}
	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "assertrouter: listening on %s, %d replicas\n", *addr, len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "assertrouter:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Same drain shape as assertd: refuse new batches (503 +
		// Retry-After), let in-flight scatter/gathers finish under the
		// drain budget, then force-close.
		fmt.Fprintf(os.Stderr, "assertrouter: %v — draining (timeout %v)\n", s, *drainTimeout)
		rt.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "assertrouter: drain expired, closing: %v\n", err)
			_ = hs.Close()
			rt.Close()
			os.Exit(1)
		}
		rt.Close()
		fmt.Fprintln(os.Stderr, "assertrouter: drained")
	}
}
