// Command assertrouter is the multi-replica front end of the assertion
// checker: it serves the same POST /v1/check API assertd does, but
// shards each batch across a fleet of assertd replicas by consistent
// hash of the design content (keeping every replica's compiled-design
// cache hot for its slice of the design space) and reassembles the
// input-ordered response — byte-identical to a single replica's answer
// modulo elapsed_ns. Batches with fewer properties than -scatter-min
// skip the scatter/gather machinery and route whole to the design's
// primary replica: on tiny batches the per-sub-request overhead costs
// more than the parallelism buys.
//
// Usage:
//
//	assertrouter -replicas http://h1:8545,http://h2:8545[,...]
//	             [-replicas-file PATH] [-addr :8550] [-spread N]
//	             [-scatter-min N] [-hedge] [-faults] [-health-interval D]
//	             [-breaker-cooldown D] [-max-attempts N]
//	             [-retry-same N] [-drain-timeout D] [-version-tag V]
//
// Failure handling (see internal/cluster): per-replica health checks
// drive ring membership (draining and dead replicas leave the ring);
// 429/503 shed answers are retried on the same replica honoring
// Retry-After; hard failures move the shard along the ring, feed a
// per-replica circuit breaker, and mid-batch the failed replica's
// unanswered properties are re-sharded across the survivors. -hedge
// additionally races slow sub-requests against the next candidate.
//
// Membership is dynamic: SIGHUP re-reads the replica set — from
// -replicas-file when given (one URL per line, '#' comments), else by
// re-parsing the -replicas flag value — and diffs it into the ring.
// Added replicas start taking new batches once healthy; removed ones
// stop receiving new shards immediately while their in-flight shards
// finish; kept replicas carry breaker and health state across the
// reload. A reload that yields no usable URLs is rejected and the
// current membership stays.
//
// GET /healthz aggregates the fleet: the router's own uptime/version
// and routing counters plus per-replica state, breaker position,
// uptime/version and served/shed ledgers. On SIGTERM/SIGINT the router
// refuses new batches (503), drains in-flight scatter/gathers, then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// parseReplicaList splits a comma- or newline-separated URL list,
// trimming blanks, '#' comments and trailing slashes.
func parseReplicaList(s string) []string {
	var urls []string
	for _, u := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '\n' || r == '\r' }) {
		if i := strings.IndexByte(u, '#'); i >= 0 {
			u = u[:i]
		}
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}

// loadReplicas resolves the current replica set: the file wins when
// configured, else the flag value.
func loadReplicas(flagValue, file string) ([]string, error) {
	if file == "" {
		return parseReplicaList(flagValue), nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return parseReplicaList(string(data)), nil
}

func main() {
	var (
		addr            = flag.String("addr", ":8550", "listen address")
		replicas        = flag.String("replicas", "", "comma-separated assertd base URLs (required unless -replicas-file)")
		replicasFile    = flag.String("replicas-file", "", "file with one assertd base URL per line ('#' comments); re-read on SIGHUP")
		spread          = flag.Int("spread", 0, "max replicas one batch is sharded across (0 = all healthy)")
		scatterMin      = flag.Int("scatter-min", 4, "batches with fewer properties route whole to the primary replica instead of sharding (0 = always shard)")
		maxAttempts     = flag.Int("max-attempts", 0, "replicas tried per shard before giving up (0 = 3)")
		retrySame       = flag.Int("retry-same", 0, "same-replica retries of a shed (429/503) answer (0 = 2)")
		maxFailover     = flag.Int("max-failover", 0, "re-shard recursion depth after replica failures (0 = 3)")
		healthInterval  = flag.Duration("health-interval", 0, "replica /healthz poll period (0 = 500ms)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "circuit breaker open -> half-open delay (0 = 2s)")
		hedge           = flag.Bool("hedge", false, "hedge slow sub-requests against the next ring candidate")
		hedgeMinDelay   = flag.Duration("hedge-min-delay", 0, "floor of the p99-derived hedge delay (0 = 50ms)")
		drainTimeout    = flag.Duration("drain-timeout", 10*time.Second, "how long to drain in-flight batches on SIGTERM before exiting")
		faults          = flag.Bool("faults", false, "enable the X-Fault-Inject header incl. route.* points (degradation testing only)")
		versionTag      = flag.String("version-tag", "dev", "build version reported on /healthz")
	)
	flag.Parse()

	urls, err := loadReplicas(*replicas, *replicasFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assertrouter:", err)
		os.Exit(2)
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "assertrouter: no replicas configured (-replicas or -replicas-file)")
		os.Exit(2)
	}

	rt, err := cluster.New(cluster.Options{
		Replicas:        urls,
		Spread:          *spread,
		ScatterMin:      *scatterMin,
		MaxAttempts:     *maxAttempts,
		RetrySame:       *retrySame,
		MaxFailover:     *maxFailover,
		HealthInterval:  *healthInterval,
		BreakerCooldown: *breakerCooldown,
		Hedge:           *hedge,
		HedgeMinDelay:   *hedgeMinDelay,
		EnableFaults:    *faults,
		Version:         *versionTag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "assertrouter:", err)
		os.Exit(2)
	}
	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "assertrouter: listening on %s, %d replicas\n", *addr, len(urls))

	// SIGHUP reloads the membership without touching in-flight batches.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			next, err := loadReplicas(*replicas, *replicasFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "assertrouter: reload failed: %v; keeping current membership\n", err)
				continue
			}
			added, removed, err := rt.SetReplicas(next)
			if err != nil {
				fmt.Fprintf(os.Stderr, "assertrouter: reload rejected: %v; keeping current membership\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "assertrouter: reloaded replicas (%d total, +%d, -%d)\n",
				len(rt.Replicas()), added, removed)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "assertrouter:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Same drain shape as assertd: refuse new batches (503 +
		// Retry-After), let in-flight scatter/gathers finish under the
		// drain budget, then force-close.
		fmt.Fprintf(os.Stderr, "assertrouter: %v — draining (timeout %v)\n", s, *drainTimeout)
		rt.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "assertrouter: drain expired, closing: %v\n", err)
			_ = hs.Close()
			rt.Close()
			os.Exit(1)
		}
		rt.Close()
		fmt.Fprintln(os.Stderr, "assertrouter: drained")
	}
}
