// Serve-smoke design: a token ring with its correctness monitors
// computed in RTL, so the same properties are addressable by signal
// name from both front ends (assertcheck -invariant/-witness and the
// assertd JSON API). tok_onehot and quiet_ok are invariants (provable
// by induction), g5 is a witness target reachable after the token
// travels five hops.
module smoke(clk, req, hold, grant, token, tok_onehot, g5, quiet_ok);
  input clk;
  input [7:0] req;
  input [7:0] hold;
  output [7:0] grant;
  output [7:0] token;
  output tok_onehot;
  output g5;
  output quiet_ok;
  reg [7:0] token;
  wire advance;
  wire [7:0] tm1;
  assign grant = token & req;
  assign advance = ~|(token & hold);
  assign tm1 = token - 8'd1;
  assign tok_onehot = (~|(token & tm1)) & (|token);
  assign g5 = grant[5];
  assign quiet_ok = ~(grant[0] & grant[1]);
  always @(posedge clk) begin
    if (advance) token <= {token[6:0], token[7]};
  end
  initial token = 8'd1;
endmodule
