// Churn-smoke design: sixteen independent token-rotator lanes under
// one top module, built so a one-line edit dirties exactly one
// property's cone of influence. Each lane carries a tagged constant
// line (`// churn:laneK`) whose literal assertload -churn rewrites;
// the constant is masked into the rotation (`8'dN & tok`) so the
// invariant okK (= lane K's token stays nonzero) holds for every
// literal, but the constant sits inside okK's cone — editing lane K
// re-verifies okK alone while ok0..ok15 minus okK replay from the
// verdict cache.

module lane0(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane0
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane1(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane1
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane2(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane2
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane3(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane3
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane4(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane4
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane5(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane5
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane6(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane6
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane7(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane7
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane8(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane8
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane9(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane9
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane10(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane10
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane11(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane11
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane12(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane12
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane13(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane13
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane14(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane14
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module lane15(clk, ok);
  input clk;
  output ok;
  reg [7:0] tok;
  wire [7:0] churn;
  wire [7:0] nxt;
  assign churn = 8'd0 & tok; // churn:lane15
  assign nxt = {tok[6:0], tok[7]} | churn;
  assign ok = |tok;
  always @(posedge clk) tok <= nxt;
  initial tok = 8'd1;
endmodule

module churn(clk, ok0, ok1, ok2, ok3, ok4, ok5, ok6, ok7, ok8, ok9, ok10, ok11, ok12, ok13, ok14, ok15);
  input clk;
  output ok0;
  output ok1;
  output ok2;
  output ok3;
  output ok4;
  output ok5;
  output ok6;
  output ok7;
  output ok8;
  output ok9;
  output ok10;
  output ok11;
  output ok12;
  output ok13;
  output ok14;
  output ok15;
  lane0 u0 (.clk(clk), .ok(ok0));
  lane1 u1 (.clk(clk), .ok(ok1));
  lane2 u2 (.clk(clk), .ok(ok2));
  lane3 u3 (.clk(clk), .ok(ok3));
  lane4 u4 (.clk(clk), .ok(ok4));
  lane5 u5 (.clk(clk), .ok(ok5));
  lane6 u6 (.clk(clk), .ok(ok6));
  lane7 u7 (.clk(clk), .ok(ok7));
  lane8 u8 (.clk(clk), .ok(ok8));
  lane9 u9 (.clk(clk), .ok(ok9));
  lane10 u10 (.clk(clk), .ok(ok10));
  lane11 u11 (.clk(clk), .ok(ok11));
  lane12 u12 (.clk(clk), .ok(ok12));
  lane13 u13 (.clk(clk), .ok(ok13));
  lane14 u14 (.clk(clk), .ok(ok14));
  lane15 u15 (.clk(clk), .ok(ok15));
endmodule
